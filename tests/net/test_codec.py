"""The wire codec: every event type survives a real JSON round trip.

The contract under test is exactly what the server and client rely on:
``decode_event(json.loads(json.dumps(encode_event(e)))) == e`` for every
registered ``ProgressEvent`` subclass — including tuple-valued fields
(which JSON flattens to lists) and the ``PropStatus`` enum — plus the
report codec, version gating, and tolerance for unknown fields.
"""

from __future__ import annotations

import json
import typing
from dataclasses import fields

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engines.result import PropStatus
from repro.multiprop.report import MultiPropReport, PropOutcome
from repro.net.codec import (
    EVENT_TYPES,
    WIRE_VERSION,
    CodecError,
    decode_event,
    decode_report,
    encode_event,
    encode_report,
)
from repro.progress import JobFinished, ProgressEvent, PropertySolved, RunStarted

# JSON-native scalars that compare equal after a dump/load cycle.
_SCALARS = st.one_of(
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
    st.none(),
)


def _leaf_strategy(hint: object) -> st.SearchStrategy:
    if hint is bool:
        return st.booleans()
    if hint is int:
        return st.integers(min_value=-(2**31), max_value=2**31)
    if hint is float:
        return st.floats(allow_nan=False, allow_infinity=False, width=32)
    if hint is str:
        return st.text(max_size=24)
    if hint is dict:
        return st.dictionaries(st.text(max_size=8), _SCALARS, max_size=4)
    origin = typing.get_origin(hint)
    if origin is tuple:
        element = typing.get_args(hint)[0]
        return st.lists(_leaf_strategy(element), max_size=4).map(tuple)
    if origin is typing.Union or str(origin) == "<class 'types.UnionType'>":
        return st.one_of(
            *[_leaf_strategy(member) for member in typing.get_args(hint)]
        )
    if hint is type(None):
        return st.none()
    raise AssertionError(f"no strategy for annotation {hint!r}")


def _event_strategy(cls: type[ProgressEvent]) -> st.SearchStrategy:
    hints = typing.get_type_hints(cls)
    kwargs = {}
    for spec in fields(cls):
        if spec.name == "status" and hints[spec.name] is object:
            # Typed ``object`` in progress.py (PropertySolved,
            # PortfolioDecided); a PropStatus in practice.
            kwargs[spec.name] = st.sampled_from(list(PropStatus))
        else:
            kwargs[spec.name] = _leaf_strategy(hints[spec.name])
    return st.builds(cls, **kwargs)


@pytest.mark.parametrize("cls", EVENT_TYPES, ids=lambda c: c.kind)
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_every_event_type_round_trips(cls, data):
    event = data.draw(_event_strategy(cls))
    wire = json.loads(json.dumps(encode_event(event)))
    assert wire["kind"] == cls.kind
    assert wire["v"] == WIRE_VERSION
    decoded = decode_event(wire)
    assert type(decoded) is cls
    assert decoded == event


def test_registry_covers_every_progress_event_subclass():
    import repro.progress as progress

    declared = {
        obj
        for obj in vars(progress).values()
        if isinstance(obj, type)
        and issubclass(obj, ProgressEvent)
        and obj is not ProgressEvent
    }
    assert declared == set(EVENT_TYPES)


def test_unknown_kind_raises():
    with pytest.raises(CodecError, match="unknown event kind"):
        decode_event({"v": WIRE_VERSION, "kind": "time-travel"})


def test_version_mismatch_raises():
    wire = encode_event(JobFinished(job="j", status="done"))
    wire["v"] = WIRE_VERSION + 1
    with pytest.raises(CodecError, match="wire version"):
        decode_event(wire)


def test_missing_required_field_raises():
    wire = encode_event(RunStarted(strategy="ja", design="d", properties=("p",)))
    del wire["design"]
    with pytest.raises(CodecError, match="run-started"):
        decode_event(wire)


def test_unknown_fields_are_ignored():
    # A newer peer may send fields we do not know; decoding tolerates them.
    event = JobFinished(job="j", status="done", total_time=1.5)
    wire = encode_event(event)
    wire["from_the_future"] = {"x": 1}
    assert decode_event(wire) == event


def test_unregistered_event_type_refuses_to_encode():
    class PluginEvent(ProgressEvent):
        kind = "plugin-event"

    with pytest.raises(CodecError, match="no codec entry"):
        encode_event(PluginEvent())


def test_bad_status_string_raises():
    wire = encode_event(
        PropertySolved(name="p", status=PropStatus.HOLDS, local=True)
    )
    wire["status"] = "maybe"
    with pytest.raises(CodecError, match="status"):
        decode_event(wire)


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
def _sample_report() -> MultiPropReport:
    report = MultiPropReport(
        method="parallel-ja",
        design="toggler",
        total_time=2.25,
        stats={"frames": 7, "clauses_exported": 3},
    )
    report.outcomes["never_r"] = PropOutcome(
        name="never_r",
        status=PropStatus.HOLDS,
        local=True,
        frames=3,
        time_seconds=0.5,
        assumed=["never_q"],
    )
    report.outcomes["never_q"] = PropOutcome(
        name="never_q",
        status=PropStatus.FAILS,
        local=True,
        cex_depth=1,
        reruns=1,
    )
    report.outcomes["etf_w"] = PropOutcome(
        name="etf_w",
        status=PropStatus.FAILS,
        local=True,
        cex_depth=4,
        expected_to_fail=True,
    )
    report.outcomes["stuck"] = PropOutcome(
        name="stuck", status=PropStatus.UNKNOWN, local=False
    )
    return report


def test_report_round_trips_through_json():
    report = _sample_report()
    wire = json.loads(json.dumps(encode_report(report)))
    decoded = decode_report(wire)
    assert decoded == report
    # Derived summaries survive (and match a client-side recompute).
    assert wire["debugging_set"] == report.debugging_set() == ["never_q"]
    assert wire["etf_confirmed"] == report.etf_confirmed() == ["etf_w"]
    assert decoded.debugging_set() == report.debugging_set()


def test_report_version_mismatch_raises():
    wire = encode_report(_sample_report())
    wire["v"] = 99
    with pytest.raises(CodecError, match="wire version"):
        decode_report(wire)


def test_report_with_malformed_outcome_raises():
    wire = encode_report(_sample_report())
    wire["outcomes"]["never_r"].pop("status")
    with pytest.raises(CodecError, match="bad report payload"):
        decode_report(wire)
