"""End to end over real process boundaries: ``repro serve --listen``.

The acceptance path of the remote subsystem: the server runs as a
separate OS process (spawned exactly as a user would, through the CLI),
the client side lives here.  Covered: submit → stream → result with
verdict parity against an in-process ``Session.run()``, mid-run
cancellation, kill-and-resume event streams, the ``/stats`` invariants,
and graceful SIGTERM shutdown with exit code 0.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.circuit.aig import AIG, aig_not
from repro.circuit.aiger import parse_aag, write_aag
from repro.net import ServiceClient
from repro.progress import JobFinished
from repro.service import VerificationService  # noqa: F401 - parity baseline
from repro.session import Session
from repro.ts.system import TransitionSystem

ROOT = Path(__file__).resolve().parents[2]
SRC = ROOT / "src"


def _env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    env["PYTHONUNBUFFERED"] = "1"
    return env


def _spawn_server(*extra: str) -> tuple[subprocess.Popen, str]:
    """A ``repro serve --listen`` child; returns it plus its address."""
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--listen",
            "127.0.0.1:0",
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_env(),
    )
    line = proc.stdout.readline()
    match = re.match(r"listening on (\S+):(\d+)", line)
    assert match, f"no listening banner, got {line!r}"
    return proc, f"{match.group(1)}:{match.group(2)}"


def _stop_server(proc: subprocess.Popen) -> str:
    proc.send_signal(signal.SIGTERM)
    out, _ = proc.communicate(timeout=120)
    assert proc.returncode == 0, out
    return out


def toggler_text() -> str:
    aig = AIG()
    q = aig.add_latch("q", init=0)
    aig.set_next(q, aig_not(q))
    r = aig.add_latch("r", init=0)
    aig.set_next(r, r)
    aig.add_property("never_r", aig_not(r))
    aig.add_property("never_q", aig_not(q))
    return write_aag(aig)


def many_props_text(count: int = 80) -> str:
    """``count`` stuck-at-zero latches, one (true) property each.

    Every proof is quick, but there are many of them — a running job
    stays cancellable mid-run for a comfortably long window.
    """
    aig = AIG()
    for index in range(count):
        latch = aig.add_latch(f"s{index}", init=0)
        aig.set_next(latch, latch)
        aig.add_property(f"never_s{index}", aig_not(latch))
    return write_aag(aig)


def verdicts(report):
    return {name: o.status.value for name, o in report.outcomes.items()}


@pytest.fixture(scope="module")
def remote_server():
    proc, address = _spawn_server("--workers", "2", "--max-concurrent-jobs", "2")
    try:
        yield ServiceClient(address)
    finally:
        if proc.poll() is None:
            out = _stop_server(proc)
            assert "drained" in out


def test_submit_stream_result_matches_in_process(remote_server):
    client = remote_server
    text = toggler_text()
    expected = verdicts(
        Session(TransitionSystem(parse_aag(text)), strategy="ja").run()
    )
    job = client.submit(design_text=text, strategy="ja", design_name="toggler")
    events = list(job.events())
    assert isinstance(events[-1], JobFinished)
    report = job.result(timeout=120)
    assert verdicts(report) == expected
    assert report.debugging_set() == ["never_q"]
    # The stream's verdict view agrees with the report's.
    streamed = {
        e.name: e.status.value for e in events if e.kind == "property-solved"
    }
    assert streamed == expected


def test_cancel_mid_run_reports_partial_verdicts(remote_server):
    client = remote_server
    job = client.submit(
        design_text=many_props_text(),
        strategy="parallel-ja",
        design_name="many",
    )
    cancelled = False
    for event in job.events():
        if event.kind == "property-solved" and not cancelled:
            cancelled = job.cancel()
            assert cancelled, "job finished before the cancel reached it"
        if isinstance(event, JobFinished):
            assert event.status == "cancelled"
    report = job.result(timeout=120)
    assert job.status()["status"] == "cancelled"
    solved = [o for o in report.outcomes.values() if o.status.value == "holds"]
    unsolved = report.unsolved()
    assert solved, "cancel must not lose verdicts already computed"
    assert unsolved, "a mid-run cancel must leave unfinished properties"
    assert len(solved) + len(unsolved) == 80


def test_killed_stream_resumes_without_drop_or_duplicate(remote_server):
    client = remote_server
    job = client.submit(design_text=toggler_text(), strategy="ja")
    job.result(timeout=120)
    full = list(job._stream_once(0))
    ids = [seq for seq, _ in full]
    assert ids == list(range(1, len(full) + 1))
    # Kill a live stream after three events; resume from its cursor.
    fresh = client.job(job.job_id)
    stream = fresh.events()
    head = [next(stream) for _ in range(3)]
    stream.close()  # the "killed" connection
    assert fresh.cursor == 3
    tail = list(client.job(job.job_id)._stream_once(fresh.cursor))
    assert [seq for seq, _ in tail] == ids[3:]
    assert len(head) + len(tail) == len(full)
    assert full[3:] == tail


def test_stats_invariants_over_the_wire(remote_server):
    client = remote_server
    job = client.submit(design_text=toggler_text(), strategy="parallel-ja")
    job.result(timeout=120)
    stats = client.stats()
    assert stats["pending"] == 0
    assert stats["submitted"] >= 1
    assert stats["jobs"]["finished"] >= 1
    pool = stats.get("pool")
    assert pool is not None, "a pooled job must have attached the pool"
    assert pool["workers"] == 2
    assert 0 <= pool["busy"] <= pool["workers"]
    assert all(seat["crashes"] == 0 for seat in pool["seats"])


def test_sigterm_drains_and_exits_zero():
    proc, address = _spawn_server("--workers", "1", "--drain-grace", "5")
    client = ServiceClient(address)
    job = client.submit(design_text=toggler_text(), strategy="ja")
    job.result(timeout=120)
    out = _stop_server(proc)
    assert "drained; all jobs settled" in out
    assert "Traceback" not in out
