"""The HTTP front end in-process: routes, streams, back-pressure.

One ``BackgroundServer`` per fixture (the server's asyncio loop on a
daemon thread, real sockets on 127.0.0.1) with a ``ServiceClient``
talking to it — everything the remote path promises, checked without
the cost of separate OS processes (which ``test_remote_e2e.py`` covers).
"""

from __future__ import annotations

import http.client
import json
import threading

import pytest

from repro.circuit.aig import AIG, aig_not
from repro.circuit.aiger import write_aag
from repro.engines.result import PropStatus
from repro.net import (
    BackgroundServer,
    RemoteError,
    ServiceBusy,
    ServiceClient,
    ServiceUnavailable,
)
from repro.progress import JobFinished, JobQueued
from repro.service import VerificationService
from repro.session import Session, unregister_strategy
from repro.ts.system import TransitionSystem


def toggler_text() -> str:
    aig = AIG()
    q = aig.add_latch("q", init=0)
    aig.set_next(q, aig_not(q))
    r = aig.add_latch("r", init=0)
    aig.set_next(r, r)
    aig.add_property("never_r", aig_not(r))  # holds
    aig.add_property("never_q", aig_not(q))  # fails at frame 1
    return write_aag(aig)


def verdicts(report):
    return {name: o.status for name, o in report.outcomes.items()}


@pytest.fixture
def remote():
    """``(client, server)`` over a fresh single-job-at-a-time service."""
    service = VerificationService(max_concurrent_jobs=2)
    with BackgroundServer(service, drain_grace=2.0) as server:
        yield ServiceClient(server.address), server


class TestSubmitAndResult:
    def test_remote_verdicts_match_in_process_session(self, remote, toggler):
        client, _ = remote
        expected = verdicts(Session(toggler, strategy="ja").run())
        job = client.submit(
            design_text=toggler_text(), strategy="ja", design_name="toggler"
        )
        assert job.info["status"] in ("queued", "running")
        report = job.result(timeout=60)
        assert verdicts(report) == expected
        assert report.design == "toggler"
        assert report.debugging_set() == ["never_q"]

    def test_event_stream_is_complete_and_ordered(self, remote):
        client, _ = remote
        job = client.submit(design_text=toggler_text(), strategy="ja")
        events = list(job.events())
        kinds = [type(e) for e in events]
        # The server-side log subscribes before admission, so even the
        # JobQueued emitted on the submitting thread is streamed.
        assert kinds[0] is JobQueued
        assert isinstance(events[-1], JobFinished)
        solved = {e.name: e.status for e in events if e.kind == "property-solved"}
        assert solved == {
            "never_r": PropStatus.HOLDS,
            "never_q": PropStatus.FAILS,
        }

    def test_status_endpoint_reports_terminal_job(self, remote):
        client, _ = remote
        job = client.submit(design_text=toggler_text(), strategy="ja")
        job.result(timeout=60)
        status = job.status()
        assert status["status"] == "done"
        assert status["finished"] is True
        assert status["events"] > 0
        assert status["strategy"] == "ja"

    def test_result_long_poll_returns_202_then_200(self, remote, gate):
        client, _ = remote
        job = client.submit(design_text=toggler_text(), strategy="gated")
        status, payload = client._request(
            "GET", f"/jobs/{job.job_id}/result?timeout=0.05"
        )
        assert status == 202
        assert payload["status"] in ("queued", "running")
        gate.release.set()
        report = job.result(timeout=60)
        assert report.method == "gated"

    def test_result_during_finalize_gap_waits_out_the_future(self, remote):
        # The service marks a handle terminal a beat before resolving
        # its future (JobFinished is emitted in between).  A /result
        # request landing in that gap must wait the future out — not
        # 500 on the Future.exception(timeout=0) TimeoutError.
        from repro.multiprop.report import MultiPropReport
        from repro.net.server import _EventLog
        from repro.service.jobs import JobHandle, JobStatus

        client, server = remote
        handle = JobHandle("job-gap", "synthetic", "ja", 1.0)
        handle._transition(JobStatus.RUNNING)
        handle._transition(JobStatus.DONE)  # terminal, future unresolved
        inner = server.server
        inner._handles[handle.job_id] = handle
        inner._logs[handle.job_id] = _EventLog(inner._loop)
        report = MultiPropReport(method="ja", design="synthetic")
        threading.Timer(
            0.3, handle.done.set_result, args=(report,)
        ).start()
        resolved = client.job(handle.job_id).result(timeout=30)
        assert resolved.design == "synthetic"

    def test_server_side_design_path(self, remote, tmp_path):
        client, _ = remote
        design = tmp_path / "toggler.aag"
        design.write_text(toggler_text(), encoding="utf-8")
        job = client.submit(design=str(design), strategy="ja")
        report = job.result(timeout=60)
        assert set(report.outcomes) == {"never_r", "never_q"}

    def test_stats_over_the_wire(self, remote):
        client, _ = remote
        job = client.submit(design_text=toggler_text(), strategy="ja")
        job.result(timeout=60)
        stats = client.stats()
        assert stats["v"] == 1
        assert stats["draining"] is False
        assert stats["submitted"] >= 1
        assert stats["max_concurrent_jobs"] == 2
        assert stats["jobs"]["finished"] >= 1
        records = {r["job"]: r for r in stats["jobs"]["records"]}
        assert records[job.job_id]["status"] == "done"

    def test_health_endpoint(self, remote):
        client, _ = remote
        health = client.health()
        assert health["status"] == "ok"
        assert health["jobs"] == 0


class TestErrorMapping:
    def _raw(self, server, method, path, body=None, headers=None):
        conn = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            raw = response.read()
            payload = json.loads(raw.decode("utf-8")) if raw else {}
            return response.status, payload
        finally:
            conn.close()

    def test_unknown_job_is_404_everywhere(self, remote):
        client, _ = remote
        ghost = client.job("job-999")
        for call in (ghost.status, ghost.cancel, lambda: ghost.result(0.01)):
            with pytest.raises(RemoteError) as info:
                call()
            assert info.value.status == 404
        with pytest.raises(RemoteError) as info:
            list(ghost.events())
        assert info.value.status == 404

    def test_unknown_path_is_404(self, remote):
        _, server = remote
        status, payload = self._raw(server, "GET", "/nope")
        assert status == 404
        assert "unknown path" in payload["error"]

    def test_wrong_method_is_405(self, remote):
        _, server = remote
        status, payload = self._raw(server, "DELETE", "/jobs")
        assert status == 405
        assert "no route" in payload["error"]

    def test_bad_json_body_is_400(self, remote):
        _, server = remote
        status, payload = self._raw(server, "POST", "/jobs", body=b"{nope")
        assert status == 400
        assert "JSON" in payload["error"]

    def test_unknown_config_field_is_400(self, remote):
        client, _ = remote
        with pytest.raises(RemoteError) as info:
            client.submit(design_text=toggler_text(), zaphod=42)
        assert info.value.status == 400
        assert "zaphod" in str(info.value)

    def test_unknown_strategy_is_400(self, remote):
        client, _ = remote
        with pytest.raises(RemoteError) as info:
            client.submit(design_text=toggler_text(), strategy="nope")
        assert info.value.status == 400

    def test_missing_design_is_400(self, remote):
        client, _ = remote
        with pytest.raises(RemoteError) as info:
            client.submit_spec({"strategy": "ja"})
        assert info.value.status == 400
        assert "design" in str(info.value)

    def test_garbage_design_text_is_400(self, remote):
        client, _ = remote
        with pytest.raises(RemoteError) as info:
            client.submit(design_text="this is not AIGER")
        assert info.value.status == 400

    def test_unreachable_server_raises_service_unavailable(self):
        client = ServiceClient("127.0.0.1:1")  # nothing listens here
        with pytest.raises(ServiceUnavailable):
            client.health()


# Gated strategy scaffolding, same shape as tests/service/test_service.py
class _Gate:
    def __init__(self):
        self.release = threading.Event()
        self.entered = threading.Event()

    def run(self, ts, config, emit):
        self.entered.set()
        assert self.release.wait(timeout=60)
        from repro.multiprop.report import MultiPropReport

        return MultiPropReport(method="gated", design=config.design_name)


@pytest.fixture
def gate():
    from repro.session.registry import _REGISTRY

    gate = _Gate()
    gate.name = "gated"
    _REGISTRY["gated"] = gate
    yield gate
    gate.release.set()
    unregister_strategy("gated")


class TestBackpressureAndCancel:
    @pytest.fixture
    def tight_remote(self):
        """One seat, one pending slot: easy to saturate over HTTP."""
        service = VerificationService(max_concurrent_jobs=1, max_pending=1)
        with BackgroundServer(service, drain_grace=2.0) as server:
            yield ServiceClient(server.address), server

    def test_queue_full_maps_to_429_with_retry_after(self, tight_remote, gate):
        client, _ = tight_remote
        running = client.submit(design_text=toggler_text(), strategy="gated")
        assert gate.entered.wait(timeout=30)
        queued = client.submit(design_text=toggler_text(), strategy="gated")
        with pytest.raises(ServiceBusy) as info:
            client.submit(design_text=toggler_text(), strategy="gated")
        assert info.value.status == 429
        assert info.value.retry_after > 0
        assert "admission queue full" in str(info.value)
        # Cancel the queued job over HTTP: it never ran.
        assert queued.cancel() is True
        assert queued.status()["status"] == "cancelled"
        gate.release.set()
        assert running.result(timeout=60).method == "gated"
        # A cancelled job still resolves: its report is served normally.
        queued.result(timeout=60)

    def test_cancel_of_finished_job_returns_false(self, remote):
        client, _ = remote
        job = client.submit(design_text=toggler_text(), strategy="ja")
        job.result(timeout=60)
        assert job.cancel() is False


class TestStreamResume:
    def _finished_job(self, client):
        job = client.submit(design_text=toggler_text(), strategy="ja")
        job.result(timeout=60)
        return job

    def test_cursor_resume_never_drops_or_duplicates(self, remote):
        client, _ = remote
        job = self._finished_job(client)
        full = list(job._stream_once(0))
        assert len(full) >= 4
        ids = [seq for seq, _ in full]
        assert ids == list(range(1, len(full) + 1))
        for cut in (0, 1, len(full) // 2, len(full) - 1, len(full)):
            resumed = list(job._stream_once(cut))
            assert full[:cut] + resumed == full

    def test_killed_stream_resumes_from_cursor(self, remote):
        client, _ = remote
        job = self._finished_job(client)
        total = job.status()["events"]
        # Take three events, then kill the connection mid-stream.
        stream = job.events()
        first = [next(stream) for _ in range(3)]
        stream.close()
        assert job.cursor == 3
        # A fresh RemoteJob with the same cursor sees exactly the rest.
        resumed_handle = client.job(job.job_id)
        resumed_handle.cursor = job.cursor
        rest = list(resumed_handle.events())
        assert len(first) + len(rest) == total
        assert isinstance(rest[-1], JobFinished)
        assert not any(isinstance(e, JobQueued) for e in rest)

    def test_watch_from_cursor_equals_watch_from_start(self, remote):
        client, _ = remote
        job = self._finished_job(client)
        replay = client.job(job.job_id)
        full = list(replay.events())
        tail_handle = client.job(job.job_id)
        tail_handle.cursor = 2
        assert list(tail_handle.events()) == full[2:]


class TestDrain:
    def test_drain_settles_jobs_and_refuses_new_submits(self, toggler):
        service = VerificationService(max_concurrent_jobs=2)
        server = BackgroundServer(service, drain_grace=2.0).start()
        client = ServiceClient(server.address)
        job = client.submit(design_text=toggler_text(), strategy="ja")
        job.result(timeout=60)
        server.stop()
        assert service.closed
        with pytest.raises(ServiceUnavailable):
            client.submit(design_text=toggler_text(), strategy="ja")

    def test_drain_cancels_stuck_jobs_within_grace(self, gate):
        # A queued gated job is cancelled by the drain (the running one
        # is released by the fixture teardown path below).
        service = VerificationService(max_concurrent_jobs=1, max_pending=2)
        server = BackgroundServer(service, drain_grace=0.2).start()
        client = ServiceClient(server.address)
        running = client.submit(design_text=toggler_text(), strategy="gated")
        assert gate.entered.wait(timeout=30)
        queued = client.submit(design_text=toggler_text(), strategy="gated")
        threading.Timer(0.5, gate.release.set).start()
        server.stop()
        assert service.closed
        # Both settled: the running job finished, the queued one was
        # either cancelled by the drain or ran after the release.
        statuses = {h.status.value for h in server.server._handles.values()}
        assert statuses <= {"done", "cancelled"}


class TestPortfolioOverTheWire:
    def test_portfolio_job_streams_race_events(self, remote):
        from repro.progress import (
            AttemptCancelled,
            AttemptStarted,
            PortfolioDecided,
        )

        client, _ = remote
        job = client.submit(
            design_text=toggler_text(),
            strategy="portfolio",
            seed=9,
            design_name="toggler",
        )
        events = list(job.events())
        assert isinstance(events[-1], JobFinished)
        started = [e for e in events if isinstance(e, AttemptStarted)]
        # Full default slate on both properties, announced up front.
        assert {(e.name, e.engine) for e in started} == {
            (name, engine)
            for name in ("never_r", "never_q")
            for engine in ("rw", "bmc", "kind", "ic3")
        }
        decided = {
            e.name: e for e in events if isinstance(e, PortfolioDecided)
        }
        assert set(decided) == {"never_r", "never_q"}
        # The decoded status survives the wire as a real PropStatus.
        assert decided["never_q"].status is PropStatus.FAILS
        assert decided["never_r"].status is PropStatus.HOLDS
        assert decided["never_r"].winner in ("kind", "ic3")
        # never_q is decided by a shallow falsifier while the other
        # engines still race: their cancellations reach the stream.
        cancelled = [e for e in events if isinstance(e, AttemptCancelled)]
        assert cancelled, "no AttemptCancelled event arrived over SSE"
        assert {e.name for e in cancelled} <= {"never_r", "never_q"}
        report = job.result(timeout=60)
        races = report.stats["portfolio"]
        assert races["never_q"]["winner"] == decided["never_q"].winner
        assert report.outcomes["never_q"].engine == decided["never_q"].winner


class TestTransitionSystemHelper:
    def test_inline_design_parses_to_same_system(self, toggler):
        from repro.circuit.aiger import parse_aag

        parsed = TransitionSystem(parse_aag(toggler_text()))
        assert [p.name for p in parsed.properties] == [
            p.name for p in toggler.properties
        ]
