"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import random
from collections.abc import Sequence

import pytest

from repro.circuit.aig import AIG, aig_not
from repro.gen.counter import buggy_counter
from repro.ts.system import TransitionSystem


def brute_force_sat(num_vars: int, clauses: Sequence[Sequence[int]]) -> bool:
    """Reference satisfiability by exhaustive enumeration (tiny instances)."""
    for model in range(1 << num_vars):
        if all(
            any(((model >> (abs(l) - 1)) & 1) == (1 if l > 0 else 0) for l in c)
            for c in clauses
        ):
            return True
    return False


def random_cnf(
    rng: random.Random, max_vars: int = 8, max_clauses: int = 35, max_width: int = 3
) -> tuple[int, list[list[int]]]:
    """A random small CNF instance."""
    num_vars = rng.randint(2, max_vars)
    num_clauses = rng.randint(1, max_clauses)
    clauses = [
        [
            rng.choice([-1, 1]) * rng.randint(1, num_vars)
            for _ in range(rng.randint(1, max_width))
        ]
        for _ in range(num_clauses)
    ]
    return num_vars, clauses


@pytest.fixture
def counter4() -> TransitionSystem:
    """Example 1's counter at 4 bits (rval = 8): fast but non-trivial."""
    return TransitionSystem(buggy_counter(bits=4))


@pytest.fixture
def toggler() -> TransitionSystem:
    """A 1-latch toggling design with one true and one false property."""
    aig = AIG()
    q = aig.add_latch("q", init=0)
    aig.set_next(q, aig_not(q))
    r = aig.add_latch("r", init=0)
    aig.set_next(r, r)
    aig.add_property("never_r", aig_not(r))  # true: r stuck at 0
    aig.add_property("never_q", aig_not(q))  # false at frame 1
    return TransitionSystem(aig)
