"""Verdict parity: ``parallel-ja`` must agree with sequential ``ja``.

Local proofs are independent of scheduling, and clause exchange only
changes how fast proofs finish, never what they conclude — so every
worker-count/exchange combination must reproduce the sequential
per-property statuses exactly.  Checked on generated multi-property
families: the synthetic paper designs and Hypothesis-driven random
designs (where the explicit-state ground truth is also available).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.engines.result import PropStatus
from repro.gen import FAILING_SPECS
from repro.gen.random_designs import random_design
from repro.session import Session
from repro.ts.projection import ProjectedReachability
from repro.ts.system import TransitionSystem


def statuses(report):
    return {name: o.status for name, o in report.outcomes.items()}


def run(ts, **overrides):
    return Session(ts, strategy="parallel-ja", **overrides).run()


class TestPaperFamilies:
    @pytest.fixture(scope="class")
    def family(self):
        """f175: 2 locally false + 3 true properties — both verdict kinds."""
        return TransitionSystem(FAILING_SPECS["f175"].build())

    @pytest.fixture(scope="class")
    def sequential(self, family):
        return statuses(Session(family, strategy="ja").run())

    def test_two_workers_exchange_on(self, family, sequential):
        assert statuses(run(family, workers=2)) == sequential

    def test_two_workers_exchange_off(self, family, sequential):
        assert statuses(run(family, workers=2, exchange=False)) == sequential

    @pytest.mark.slow
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("exchange", [True, False])
    def test_worker_exchange_matrix(self, family, sequential, workers, exchange):
        report = run(family, workers=workers, exchange=exchange)
        assert statuses(report) == sequential
        assert report.stats["workers"] == min(workers, len(family.properties))
        if not exchange:
            assert report.stats["exchange_clauses"] == 0

    @pytest.mark.slow
    def test_larger_failing_family(self):
        ts = TransitionSystem(FAILING_SPECS["f207"].build())
        sequential = statuses(
            Session(ts, strategy="ja", per_property_conflicts=2000).run()
        )
        parallel = statuses(
            run(ts, workers=4, per_property_conflicts=2000)
        )
        assert parallel == sequential

    def test_schedule_only_statuses_match(self, family, sequential):
        # The simulator proves standalone (no assumptions dropped), so
        # HOLDS/FAILS statuses agree on families without budget pressure.
        assert statuses(run(family, schedule_only=True, workers=4)) == sequential


class TestGeneratedFamilies:
    """Hypothesis-generated designs, cross-checked three ways."""

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_props=st.integers(min_value=2, max_value=4),
        workers=st.sampled_from([1, 2, 4]),
        exchange=st.booleans(),
    )
    def test_parallel_matches_sequential_and_ground_truth(
        self, seed, n_props, workers, exchange
    ):
        ts = TransitionSystem(random_design(seed, n_props=n_props))
        sequential = statuses(Session(ts, strategy="ja").run())
        parallel = statuses(run(ts, workers=workers, exchange=exchange))
        assert parallel == sequential
        truth = ProjectedReachability(ts)
        for prop in ts.properties:
            expected = (
                PropStatus.FAILS
                if truth.fails_locally(prop.name)
                else PropStatus.HOLDS
            )
            assert parallel[prop.name] is expected, prop.name


class TestEightPropertyAcceptance:
    """The ISSUE acceptance shape: a >= 8-property family, 4 workers."""

    @pytest.mark.slow
    def test_eight_plus_properties_four_workers(self):
        ts = TransitionSystem(FAILING_SPECS["f335"].build())
        assert len(ts.properties) >= 8
        sequential = statuses(Session(ts, strategy="ja").run())
        parallel = statuses(run(ts, workers=4))
        assert parallel == sequential
        assert any(s is PropStatus.FAILS for s in parallel.values())
        assert any(s is PropStatus.HOLDS for s in parallel.values())
