"""Property-based tests of the paper's theory over random designs.

Hypothesis drives design generation (seed + shape parameters); the
invariants checked are the propositions of Sections 2-4 evaluated with
the explicit-state ground truth and the SAT-based drivers.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.engines.bmc import bmc_sweep
from repro.gen.random_designs import random_design
from repro.multiprop.ja import ja_verify
from repro.ts.projection import ProjectedReachability, assumption_names
from repro.ts.system import TransitionSystem

DESIGNS = st.builds(
    random_design,
    seed=st.integers(min_value=0, max_value=10_000),
    n_latches=st.integers(min_value=2, max_value=5),
    n_inputs=st.integers(min_value=1, max_value=2),
    n_gates=st.integers(min_value=4, max_value=14),
    n_props=st.integers(min_value=2, max_value=4),
)


@settings(max_examples=30, deadline=None)
@given(DESIGNS)
def test_prop2_local_weaker_than_global(aig):
    """Prop. 2A: holding globally implies holding locally — and a locally
    failing property fails globally too (contrapositive packaging)."""
    ts = TransitionSystem(aig)
    gt = ProjectedReachability(ts)
    for prop in ts.properties:
        if gt.fails_locally(prop.name):
            assert gt.fails_globally(prop.name)


@settings(max_examples=30, deadline=None)
@given(DESIGNS)
def test_prop5_aggregate_iff_locals(aig):
    """Prop. 5: the aggregate holds iff every property holds locally."""
    ts = TransitionSystem(aig)
    gt = ProjectedReachability(ts)
    aggregate_fails = any(gt.fails_globally(p.name) for p in ts.properties)
    any_local_fail = any(gt.fails_locally(p.name) for p in ts.properties)
    assert aggregate_fails == any_local_fail


@settings(max_examples=25, deadline=None)
@given(DESIGNS)
def test_prop6_first_failures_hit_debugging_set(aig):
    """Prop. 6: a shortest aggregate CEX ends in a debugging-set failure."""
    ts = TransitionSystem(aig)
    gt = ProjectedReachability(ts)
    debug = set(gt.debugging_set())
    if not debug:
        return
    # A minimal-depth failing property yields a shortest aggregate CEX.
    results = bmc_sweep(ts, max_depth=14)
    failing = [r for r in results.values() if r.fails]
    assert failing
    shallowest = min(failing, key=lambda r: r.frames)
    eth = {p.name: p.lit for p in ts.eth_properties()}
    frame, names = shallowest.cex.first_failures(ts.aig, eth)
    assert frame is not None
    assert set(names) & debug


@settings(max_examples=20, deadline=None)
@given(DESIGNS)
def test_ja_driver_matches_ground_truth(aig):
    """End-to-end: the JA driver's debugging set equals the semantics'."""
    ts = TransitionSystem(aig)
    gt = ProjectedReachability(ts)
    report = ja_verify(ts)
    assert not report.unsolved()
    assert report.debugging_set() == sorted(gt.debugging_set())


@settings(max_examples=20, deadline=None)
@given(DESIGNS, st.integers(min_value=0, max_value=3))
def test_assumption_monotonicity(aig, k):
    """More assumptions can only remove local failures, never add them."""
    ts = TransitionSystem(aig)
    gt = ProjectedReachability(ts)
    target = ts.properties[0].name
    all_assumed = assumption_names(ts, target)
    smaller = all_assumed[:k] if k <= len(all_assumed) else all_assumed
    if not gt.fails(target, smaller):
        assert not gt.fails(target, all_assumed)
