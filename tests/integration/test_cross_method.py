"""Integration tests: all engines and drivers must tell one consistent
story on the same designs, exactly as the paper's theory predicts."""

from __future__ import annotations

import pytest

from repro.engines.bmc import bmc_check
from repro.engines.ic3 import IC3Options, ic3_check
from repro.engines.kinduction import kinduction_check
from repro.engines.result import PropStatus
from repro.gen.counter import buggy_counter
from repro.gen.random_designs import random_design
from repro.multiprop.ja import JAOptions, ja_verify
from repro.multiprop.joint import joint_verify
from repro.multiprop.separate import separate_verify
from repro.ts.system import TransitionSystem


class TestEngineAgreement:
    def test_three_engines_agree_on_global_verdicts(self):
        for seed in range(20):
            ts = TransitionSystem(random_design(seed))
            for prop in ts.properties:
                ic3 = ic3_check(ts, prop.name)
                bmc = bmc_check(ts, prop.name, max_depth=18)
                kind = kinduction_check(ts, prop.name, max_k=18)
                if ic3.fails:
                    assert bmc.fails, (seed, prop.name)
                    assert len(bmc.cex) == len(kind.cex) == len(ic3.cex) or (
                        len(bmc.cex) <= len(ic3.cex)
                    )
                else:
                    assert bmc.unknown, (seed, prop.name)
                if kind.status is not PropStatus.UNKNOWN:
                    assert kind.fails == ic3.fails, (seed, prop.name)


class TestTheoryOnDrivers:
    def test_prop5_on_drivers(self):
        # All-local-true (JA) iff all-global-true (joint/separate).
        for seed in range(25):
            ts = TransitionSystem(random_design(seed))
            ja = ja_verify(ts)
            joint = joint_verify(ts)
            assert (not ja.debugging_set()) == (not joint.false_props()), seed

    def test_local_true_implies_dominated_failures(self):
        # A property that fails globally but holds locally must have all
        # its global CEXs dominated: every CEX first falsifies some other
        # ETH property (checked on the engine-produced CEX).
        checked = 0
        for seed in range(30):
            ts = TransitionSystem(random_design(seed))
            ja = ja_verify(ts)
            sep = separate_verify(ts)
            locally_true = set(ja.true_props())
            for name in sep.false_props():
                if name not in locally_true:
                    continue
                result = ic3_check(ts, name)
                assert result.fails
                others = {
                    p.name: p.lit for p in ts.properties if p.name != name
                }
                frame, _ = result.cex.first_failures(ts.aig, others)
                assert frame is not None and frame < len(result.cex) - 1, (
                    seed,
                    name,
                )
                checked += 1
        assert checked > 3

    def test_debugging_set_subset_of_global_failures(self):
        for seed in range(25):
            ts = TransitionSystem(random_design(seed))
            ja = ja_verify(ts)
            sep = separate_verify(ts)
            assert set(ja.debugging_set()) <= set(sep.false_props()), seed

    def test_joint_and_separate_agree(self):
        for seed in range(25):
            ts = TransitionSystem(random_design(seed))
            assert joint_verify(ts).false_props() == separate_verify(ts).false_props()


class TestCounterEndToEnd:
    """Example 1 walked through every method at 5 bits (rval=16)."""

    def setup_method(self):
        self.ts = TransitionSystem(buggy_counter(5))

    def test_global_engines_find_deep_cex(self):
        bmc = bmc_check(self.ts, "P1", max_depth=20)
        ic3 = ic3_check(self.ts, "P1")
        assert bmc.frames == ic3.frames == 18

    def test_ja_replaces_deep_cex_with_local_proof(self):
        report = ja_verify(self.ts)
        assert report.debugging_set() == ["P0"]
        assert report.outcomes["P1"].status is PropStatus.HOLDS

    def test_joint_needs_both_cexs(self):
        report = joint_verify(self.ts)
        assert report.false_props() == ["P0", "P1"]
        assert report.outcomes["P1"].cex_depth == 18

    def test_ja_total_time_beats_separate_global(self):
        import time

        start = time.monotonic()
        ja_verify(self.ts)
        ja_time = time.monotonic() - start
        start = time.monotonic()
        separate_verify(self.ts)
        sep_time = time.monotonic() - start
        # Not a benchmark, just the qualitative Table V relation with a
        # generous margin to stay robust on slow CI machines.
        assert ja_time < sep_time * 2
