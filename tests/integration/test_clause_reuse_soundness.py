"""Integration tests targeting the subtle soundness question of clause
re-use across differently-constrained local proofs (see the discussion
in repro/multiprop/clausedb.py).

The paper re-uses strengthening clauses from one local proof in the
next local proof even though the assumption sets differ.  These tests
hammer that mechanism: across many random designs, JA with re-use must
produce exactly the same debugging sets as JA without re-use and as the
explicit-state ground truth, and every certificate the engine emits must
check out independently.
"""

from __future__ import annotations

from repro.engines.ic3 import IC3Options, ic3_check
from repro.gen.random_designs import random_design
from repro.multiprop.clausedb import ClauseDB
from repro.multiprop.ja import JAOptions, JAVerifier
from repro.ts.projection import ProjectedReachability, assumption_names
from repro.ts.system import TransitionSystem
from tests.engines.test_ic3 import check_invariant


class TestReuseNeverChangesVerdicts:
    def test_against_ground_truth_many_designs(self):
        for seed in range(60):
            ts = TransitionSystem(random_design(seed))
            gt = ProjectedReachability(ts)
            verifier = JAVerifier(ts, JAOptions(clause_reuse=True))
            report = verifier.run()
            assert report.debugging_set() == sorted(gt.debugging_set()), seed

    def test_certificates_always_valid(self):
        for seed in range(25):
            ts = TransitionSystem(random_design(seed))
            verifier = JAVerifier(ts, JAOptions(clause_reuse=True))
            verifier.run()
            for name, result in verifier.results.items():
                if result.holds:
                    check_invariant(
                        ts, name, result.invariant, assumed=tuple(result.assumed)
                    )

    def test_cross_property_seeding_manually(self):
        # Drive the mechanism by hand: prove P0 locally, seed its clauses
        # into P1's local proof, and cross-check P1's verdict.
        for seed in range(25):
            ts = TransitionSystem(random_design(seed))
            gt = ProjectedReachability(ts)
            names = [p.name for p in ts.properties]
            db = ClauseDB(ts)
            for name in names:
                assumed = assumption_names(ts, name)
                result = ic3_check(
                    ts,
                    name,
                    IC3Options(
                        assumed=assumed,
                        seed_clauses=db.clauses(),
                        respect_constraints_in_lifting=True,
                    ),
                )
                assert result.fails == gt.fails(name, assumed), (seed, name)
                if result.holds:
                    db.add_all(result.invariant)

    def test_reuse_reduces_work_on_shared_invariants(self):
        # On a ring, later properties should need fewer SAT queries when
        # seeded with the first property's strengthening clauses.
        from repro.circuit.aig import AIG
        from repro.gen.blocks import token_ring_slice

        aig = AIG()
        names = token_ring_slice(aig, "r", 7)
        ts = TransitionSystem(aig)
        first = ic3_check(ts, names[0])
        assert first.holds
        cold = ic3_check(ts, names[3])
        warm = ic3_check(ts, names[3], IC3Options(seed_clauses=first.invariant))
        assert warm.stats["sat_queries"] <= cold.stats["sat_queries"]
