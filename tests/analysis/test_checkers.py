"""Each built-in checker catches its seeded violation — and only that.

Every test feeds a small fixture snippet (an in-memory ``{path:
source}`` set) through :func:`repro.analysis.analyze_sources` with a
single checker selected, asserting both the positive (the seeded
violation is found, with the right checker id) and the negative (the
idiomatic counterpart stays clean).
"""

from __future__ import annotations

import textwrap

from repro.analysis import AnalysisResult, analyze_sources, get_checker


def run_checker(checker_id: str, sources: dict[str, str]) -> AnalysisResult:
    dedented = {path: textwrap.dedent(text) for path, text in sources.items()}
    return analyze_sources(dedented, checkers=[get_checker(checker_id)])


def messages(result: AnalysisResult) -> list[str]:
    return [f.message for f in result.findings]


# ----------------------------------------------------------------------
# wire-protocol
# ----------------------------------------------------------------------

POOL_PY = """\
    class Pool:
        def submit(self, item):
            self._ctrl.put(("job", item))

        def stop(self):
            self._ctrl.put(("quit",))

        def cancel(self):
            self._ctrl.put(("cancel",))
    """

WORKER_PY = """\
    def loop(ctrl):
        while True:
            message = ctrl.get()
            tag = message[0]
            if tag == "quit":
                break
            if tag == "job":
                handle(message)
            elif tag == "stale":
                pass


    def handle(message):
        pass
    """


def test_wire_protocol_unhandled_tag_and_dead_arm():
    result = run_checker(
        "wire-protocol", {"pool.py": POOL_PY, "worker.py": WORKER_PY}
    )
    texts = messages(result)
    assert any("'cancel'" in m and "no dispatch arm" in m for m in texts), texts
    assert any("'stale'" in m and "matches no send site" in m for m in texts), texts
    assert all(f.checker == "wire-protocol" for f in result.findings)


def test_wire_protocol_exhaustive_dispatch_is_clean():
    handled = WORKER_PY.replace('"stale"', '"cancel"')
    result = run_checker(
        "wire-protocol", {"pool.py": POOL_PY, "worker.py": handled}
    )
    assert result.findings == []


def test_wire_protocol_channel_without_dispatcher():
    sources = {
        "pool.py": """\
        class Pool:
            def publish(self, item):
                self._out_queue.put(("result", item))
        """
    }
    result = run_checker("wire-protocol", sources)
    assert any("no dispatcher" in m for m in messages(result))


# ----------------------------------------------------------------------
# pickle-safety
# ----------------------------------------------------------------------


def test_pickle_safety_flags_lambda_on_mp_queue():
    sources = {
        "pool.py": """\
        import multiprocessing as mp

        def run():
            q = mp.Queue()
            q.put(("job", lambda x: x))
        """
    }
    result = run_checker("pickle-safety", sources)
    assert any("lambda" in m for m in messages(result))


def test_pickle_safety_ignores_thread_queues():
    sources = {
        "local.py": """\
        import queue

        def run():
            q = queue.Queue()
            q.put(("job", lambda x: x))
        """
    }
    assert run_checker("pickle-safety", sources).findings == []


def test_pickle_safety_flags_nested_function_reference():
    sources = {
        "pool.py": """\
        import multiprocessing as mp

        def run():
            q = mp.Queue()

            def helper(x):
                return x

            q.put(("job", helper))
        """
    }
    result = run_checker("pickle-safety", sources)
    assert any("closures do not pickle" in m for m in messages(result))


# ----------------------------------------------------------------------
# queue-discipline
# ----------------------------------------------------------------------


def test_queue_discipline_flags_bare_get_in_loop():
    sources = {
        "drain.py": """\
        def loop(q):
            while True:
                item = q.get()
        """
    }
    result = run_checker("queue-discipline", sources)
    assert result.findings and result.findings[0].checker == "queue-discipline"


def test_queue_discipline_accepts_timeout():
    sources = {
        "drain.py": """\
        def loop(q):
            while True:
                item = q.get(timeout=0.5)
        """
    }
    assert run_checker("queue-discipline", sources).findings == []


def test_queue_discipline_flags_bounded_put_without_timeout():
    sources = {
        "push.py": """\
        import queue

        q = queue.Queue(8)

        def send(x):
            q.put(x)
        """
    }
    result = run_checker("queue-discipline", sources)
    assert any("bounded" in m for m in messages(result))


# ----------------------------------------------------------------------
# blocking-while-locked
# ----------------------------------------------------------------------


def test_locks_flags_blocking_get_under_lock():
    sources = {
        "core.py": """\
        import threading

        lock = threading.Lock()

        def drain(out):
            with lock:
                item = out.get()
            return item
        """
    }
    result = run_checker("blocking-while-locked", sources)
    assert result.findings and result.findings[0].checker == "blocking-while-locked"


def test_locks_allows_put_on_unbounded_thread_queue():
    sources = {
        "core.py": """\
        import queue
        import threading

        lock = threading.Lock()
        q = queue.Queue()

        def push(x):
            with lock:
                q.put(x)
        """
    }
    assert run_checker("blocking-while-locked", sources).findings == []


# ----------------------------------------------------------------------
# event-hygiene
# ----------------------------------------------------------------------

PROGRESS_PY = """\
    __all__ = ["ProgressEvent", "Solved"]


    class ProgressEvent:
        pass


    class Solved(ProgressEvent):
        pass


    class Forgotten(ProgressEvent):
        pass


    def format_event(event):
        if isinstance(event, Solved):
            return "solved"
        return "generic"
    """


def test_event_hygiene_flags_unrendered_unexported_event():
    result = run_checker("event-hygiene", {"src/repro/progress.py": PROGRESS_PY})
    texts = messages(result)
    assert any("'Forgotten'" in m and "rendering arm" in m for m in texts), texts
    assert any("'Forgotten'" in m and "__all__" in m for m in texts), texts
    assert not any("'Solved'" in m for m in texts)


def test_event_hygiene_inert_without_progress_module():
    result = run_checker("event-hygiene", {"src/other.py": "x = 1\n"})
    assert result.findings == []


# ----------------------------------------------------------------------
# config-hygiene
# ----------------------------------------------------------------------

CONFIG_PY = """\
    class VerificationConfig:
        strategy: str = "joint"
        max_frames: int = 500
        budget: int = 3
        dead_knob: str = "x"

        def validate(self):
            if self.max_frames <= 0:
                raise ValueError("max_frames must be positive")
    """

CLI_PY = """\
    def build(args):
        return dict(strategy=args.strategy, max_frames=args.max_frames,
                    budget=args.budget)
    """

CONSUMER_PY = """\
    def run(config):
        return (config.strategy, config.max_frames, config.budget)
    """


def test_config_hygiene_dead_unreachable_unvalidated_fields():
    result = run_checker(
        "config-hygiene",
        {
            "src/repro/session/config.py": CONFIG_PY,
            "src/repro/cli.py": CLI_PY,
            "src/repro/runner.py": CONSUMER_PY,
        },
    )
    texts = messages(result)
    assert any("'dead_knob'" in m and "never consumed" in m for m in texts), texts
    assert any("'dead_knob'" in m and "not reachable from the CLI" in m for m in texts)
    assert any("'budget'" in m and "validate()" in m for m in texts), texts
    assert not any("'strategy'" in m or "'max_frames'" in m for m in texts)


# ----------------------------------------------------------------------
# cache-hygiene
# ----------------------------------------------------------------------

RAW_CACHE_WRITE = """\
    def save_record(path, text):
        with open(path, "w") as f:
            f.write(text)
    """

PATHLIB_CACHE_WRITE = """\
    def save_record(path, text):
        path.write_text(text)
    """

ATOMIC_CACHE_WRITE = """\
    import os, tempfile

    def atomic_write(path, text):
        fd, tmp = tempfile.mkstemp(dir=".")
        with os.fdopen(fd, "w") as f:
            f.write(text)
        os.replace(tmp, path)

    def save_record(path, text):
        atomic_write(path, text)

    def load_record(path):
        with open(path) as f:
            return f.read()
    """

UNCERTIFIED_CONSUMER = """\
    def serve(store, ts, name, cone):
        record = store.get(cone)
        return PropOutcome(name=name, status=record.status)
    """

CERTIFIED_CONSUMER = """\
    def serve(store, ts, name, cone):
        record = store.get(cone)
        if record.status == "holds":
            if not certify_invariant(ts, name, record.invariant).valid:
                return None
        elif not certify_cex(ts, name, record.trace).valid:
            return None
        return PropOutcome(name=name, status=record.status)
    """


class TestCacheHygiene:
    def test_raw_write_in_cache_package_flagged(self):
        result = run_checker(
            "cache-hygiene", {"src/repro/cache/store.py": RAW_CACHE_WRITE}
        )
        assert any("outside atomic_write" in m for m in messages(result))

    def test_pathlib_write_in_cache_package_flagged(self):
        result = run_checker(
            "cache-hygiene", {"src/repro/cache/store.py": PATHLIB_CACHE_WRITE}
        )
        assert any("outside atomic_write" in m for m in messages(result))

    def test_atomic_write_itself_clean(self):
        result = run_checker(
            "cache-hygiene", {"src/repro/cache/store.py": ATOMIC_CACHE_WRITE}
        )
        assert messages(result) == []

    def test_same_write_outside_cache_package_ignored(self):
        result = run_checker(
            "cache-hygiene", {"src/repro/multiprop/clausedb.py": RAW_CACHE_WRITE}
        )
        assert messages(result) == []

    def test_uncertified_store_consumer_flagged(self):
        result = run_checker(
            "cache-hygiene", {"src/repro/cache/resolve.py": UNCERTIFIED_CONSUMER}
        )
        found = messages(result)
        assert any("certify_invariant" in m for m in found)
        assert any("certify_cex" in m for m in found)

    def test_certified_consumer_clean(self):
        result = run_checker(
            "cache-hygiene", {"src/repro/cache/resolve.py": CERTIFIED_CONSUMER}
        )
        assert messages(result) == []

    def test_outcome_builder_without_store_reads_clean(self):
        source = """\
            def fresh(name, status):
                return PropOutcome(name=name, status=status)
            """
        result = run_checker(
            "cache-hygiene", {"src/repro/multiprop/ja.py": source}
        )
        assert messages(result) == []

    def test_dict_get_is_not_a_store_read(self):
        source = """\
            def lookup(self, stores, key, name, status):
                store = self._stores.get(key)
                return PropOutcome(name=name, status=status)
            """
        result = run_checker(
            "cache-hygiene", {"src/repro/service/core.py": source}
        )
        assert messages(result) == []
