"""The lint gate over the real tree: meta-tests and the CLI surface.

These tests pin the property the whole subsystem exists for: the
shipped source passes its own analysis, and *breaking* a real protocol
(deleting a dispatch arm in ``parallel/worker.py``) makes the analysis
fail loudly.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import analyze_paths, analyze_sources, get_checker
from repro.cli import main

ROOT = Path(__file__).resolve().parents[2]
SRC = ROOT / "src"


@pytest.fixture()
def repo_root(monkeypatch):
    """Run from the repo root, like CI does."""
    monkeypatch.chdir(ROOT)
    return ROOT


def test_shipped_source_passes_its_own_lint(repo_root):
    result = analyze_paths(
        ["src"], jobs=1, baseline_path="analysis_baseline.toml"
    )
    assert result.ok, "\n".join(f.render() for f in result.errors())
    assert result.stale_baseline == []
    assert result.files_analyzed > 50


def test_deleting_a_dispatch_arm_fails_the_lint():
    sources = {
        str(path.relative_to(ROOT)): path.read_text(encoding="utf-8")
        for path in sorted((SRC / "repro" / "parallel").glob("*.py"))
    }
    worker = "src/repro/parallel/worker.py"
    assert 'if kind == "cancel":' in sources[worker]
    sources[worker] = sources[worker].replace(
        'if kind == "cancel":', 'if kind == "cancel-deleted":'
    )
    result = analyze_sources(
        sources, checkers=[get_checker("wire-protocol")]
    )
    texts = [f.message for f in result.findings]
    assert any(
        "'cancel'" in m and "no dispatch arm" in m for m in texts
    ), texts
    assert any(
        "'cancel-deleted'" in m and "matches no send site" in m for m in texts
    ), texts


def test_portfolio_attempt_cancel_arm_is_gated():
    # The portfolio controller's attempt queue is a wire protocol like
    # any other: deleting the "cancelled" dispatch arm must fail the
    # lint, or hung-loser acknowledgements would vanish silently.
    sources = {
        str(path.relative_to(ROOT)): path.read_text(encoding="utf-8")
        for path in sorted((SRC / "repro" / "parallel").glob("*.py"))
    }
    portfolio = "src/repro/parallel/portfolio.py"
    assert 'elif kind == "cancelled":' in sources[portfolio]
    sources[portfolio] = sources[portfolio].replace(
        'elif kind == "cancelled":', 'elif kind == "cancelled-deleted":'
    )
    result = analyze_sources(sources, checkers=[get_checker("wire-protocol")])
    texts = [f.message for f in result.findings]
    assert any(
        "'cancelled'" in m and "no dispatch arm" in m for m in texts
    ), texts
    assert any(
        "'cancelled-deleted'" in m and "matches no send site" in m
        for m in texts
    ), texts


def test_portfolio_decided_codec_entry_is_gated():
    # PortfolioDecided crosses the wire (SSE streams race decisions);
    # dropping its EVENT_TYPES row must be a net-protocol error.
    sources = _net_sources()
    codec = "src/repro/net/codec.py"
    head, sep, registry = sources[codec].partition("EVENT_TYPES: tuple")
    assert sep and "    PortfolioDecided,\n" in registry
    sources[codec] = head + sep + registry.replace(
        "    PortfolioDecided,\n", "", 1
    )
    result = analyze_sources(sources, checkers=[get_checker("net-protocol")])
    texts = [f.message for f in result.findings]
    assert any(
        "'PortfolioDecided'" in m and "no codec entry" in m for m in texts
    ), texts


def test_service_stats_command_is_gated():
    # The ("stats", request) control message added for the stats
    # surface must stay paired: deleting its dispatch arm in the
    # service dispatcher is a wire-protocol error.
    sources = {
        str(path.relative_to(ROOT)): path.read_text(encoding="utf-8")
        for path in sorted((SRC / "repro" / "service").glob("*.py"))
    }
    core = "src/repro/service/core.py"
    assert 'elif command[0] == "stats":' in sources[core]
    sources[core] = sources[core].replace(
        'elif command[0] == "stats":', 'elif command[0] == "stats-deleted":'
    )
    result = analyze_sources(sources, checkers=[get_checker("wire-protocol")])
    texts = [f.message for f in result.findings]
    assert any(
        "'stats'" in m and "no dispatch arm" in m for m in texts
    ), texts
    assert any(
        "'stats-deleted'" in m and "matches no send site" in m for m in texts
    ), texts


def test_stats_snapshot_event_rendering_is_gated():
    # StatsSnapshot must keep its format_event arm and __all__ entry;
    # losing either is an event-hygiene error.
    progress = SRC / "repro" / "progress.py"
    source = progress.read_text(encoding="utf-8")
    assert "isinstance(event, StatsSnapshot)" in source
    unrendered = source.replace(
        "isinstance(event, StatsSnapshot)",
        "isinstance(event, ServiceSaturated)",
    )
    result = analyze_sources(
        {"src/repro/progress.py": unrendered},
        checkers=[get_checker("event-hygiene")],
    )
    texts = [f.message for f in result.findings]
    assert any(
        "'StatsSnapshot'" in m and "no" in m and "rendering arm" in m
        for m in texts
    ), texts

    unexported = source.replace('    "StatsSnapshot",\n', "")
    assert unexported != source
    result = analyze_sources(
        {"src/repro/progress.py": unexported},
        checkers=[get_checker("event-hygiene")],
    )
    texts = [f.message for f in result.findings]
    assert any(
        "'StatsSnapshot'" in m and "missing" in m and "__all__" in m
        for m in texts
    ), texts


def _net_sources() -> dict[str, str]:
    paths = [
        SRC / "repro" / "progress.py",
        *sorted((SRC / "repro" / "net").glob("*.py")),
    ]
    return {
        str(path.relative_to(ROOT)): path.read_text(encoding="utf-8")
        for path in paths
    }


def test_deleting_a_codec_entry_fails_the_lint():
    # Every ProgressEvent subclass needs an EVENT_TYPES row in the wire
    # codec; dropping one must be a net-protocol error, or new events
    # would silently cross the wire as opaque blobs.
    sources = _net_sources()
    codec = "src/repro/net/codec.py"
    head, sep, registry = sources[codec].partition("EVENT_TYPES: tuple")
    assert sep and "    JobFinished,\n" in registry
    sources[codec] = head + sep + registry.replace("    JobFinished,\n", "", 1)
    result = analyze_sources(sources, checkers=[get_checker("net-protocol")])
    texts = [f.message for f in result.findings]
    assert any(
        "'JobFinished'" in m and "no codec entry" in m for m in texts
    ), texts


def test_stale_codec_entry_fails_the_lint():
    # The reverse direction: an EVENT_TYPES row naming a class that is
    # no longer a ProgressEvent subclass is a stale registry entry.
    sources = _net_sources()
    progress = "src/repro/progress.py"
    assert "class ShardOpened(ProgressEvent):" in sources[progress]
    sources[progress] = sources[progress].replace(
        "class ShardOpened(ProgressEvent):", "class ShardOpened:"
    )
    result = analyze_sources(sources, checkers=[get_checker("net-protocol")])
    texts = [f.message for f in result.findings]
    assert any(
        "'ShardOpened'" in m and "stale" in m for m in texts
    ), texts


def test_route_without_handler_fails_the_lint():
    sources = _net_sources()
    server = "src/repro/net/server.py"
    assert 'Route("GET", "/stats", "stats"),' in sources[server]
    sources[server] = sources[server].replace(
        'Route("GET", "/stats", "stats"),',
        'Route("GET", "/stats", "stats_gone"),',
    )
    result = analyze_sources(sources, checkers=[get_checker("net-protocol")])
    texts = [f.message for f in result.findings]
    assert any(
        "GET /stats" in m and "_handle_stats_gone" in m for m in texts
    ), texts
    # The orphaned real handler is flagged from the other direction too.
    assert any(
        "_handle_stats" in m and "dead endpoint" in m for m in texts
    ), texts


def test_net_lint_is_inert_without_net_sources():
    # Fixture trees without the net package must produce no findings.
    progress = SRC / "repro" / "progress.py"
    result = analyze_sources(
        {"src/repro/progress.py": progress.read_text(encoding="utf-8")},
        checkers=[get_checker("net-protocol")],
    )
    assert result.findings == []


def test_parallel_and_serial_runs_agree():
    paths = [str(SRC / "repro" / "analysis")]
    serial = analyze_paths(paths, jobs=1)
    parallel = analyze_paths(paths, jobs=2)
    assert serial.findings == parallel.findings
    assert serial.files_analyzed == parallel.files_analyzed > 8


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------


def test_cli_lint_clean_exit_zero(repo_root, capsys):
    assert main(["lint", "--jobs", "1"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("clean:")


def test_cli_lint_findings_exit_one_with_json(tmp_path, capsys):
    bad = tmp_path / "drain.py"
    bad.write_text(
        "def loop(q):\n    while True:\n        item = q.get()\n",
        encoding="utf-8",
    )
    code = main(["lint", str(tmp_path), "--format=json", "--jobs", "1"])
    assert code == 1
    document = json.loads(capsys.readouterr().out)
    assert document["ok"] is False
    assert document["findings"][0]["checker"] == "queue-discipline"


def test_cli_lint_bad_baseline_exit_two(tmp_path, capsys):
    baseline = tmp_path / "baseline.toml"
    baseline.write_text(
        '[[suppression]]\nchecker = "x"\nfile = "y"\n'
        'message = "z"\njustification = "TODO"\n',
        encoding="utf-8",
    )
    (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
    code = main(
        ["lint", str(tmp_path), "--baseline", str(baseline), "--jobs", "1"]
    )
    assert code == 2
    assert "justification" in capsys.readouterr().err


def test_cli_lint_write_baseline_round_trip(tmp_path, capsys):
    bad = tmp_path / "drain.py"
    bad.write_text(
        "def loop(q):\n    while True:\n        item = q.get()\n",
        encoding="utf-8",
    )
    baseline = tmp_path / "baseline.toml"
    assert (
        main(
            [
                "lint",
                str(tmp_path),
                "--baseline",
                str(baseline),
                "--write-baseline",
                "--jobs",
                "1",
            ]
        )
        == 0
    )
    capsys.readouterr()
    # The generated TODO justification must be rejected as-is ...
    assert (
        main(["lint", str(tmp_path), "--baseline", str(baseline), "--jobs", "1"])
        == 2
    )
    # ... and accepted once a human justifies it.
    baseline.write_text(
        baseline.read_text(encoding="utf-8").replace(
            '"TODO"', '"fixture: exercised by the gate test"'
        ),
        encoding="utf-8",
    )
    assert (
        main(["lint", str(tmp_path), "--baseline", str(baseline), "--jobs", "1"])
        == 0
    )
    out = capsys.readouterr().out
    assert "1 baselined" in out


def test_cli_list_checkers(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["lint", "--list-checkers"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert "wire-protocol" in out and "pickle-safety" in out
