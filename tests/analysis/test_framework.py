"""Registry semantics, inline suppressions, reporters and the baseline."""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    BaselineError,
    Checker,
    Finding,
    UnknownCheckerError,
    analyze_sources,
    available_checkers,
    get_checker,
    parse_baseline,
    register_checker,
    render_baseline,
    render_json,
    render_text,
    split_baselined,
    unregister_checker,
)

BUILTIN_IDS = {
    "blocking-while-locked",
    "config-hygiene",
    "event-hygiene",
    "pickle-safety",
    "queue-discipline",
    "wire-protocol",
}


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


def test_builtins_registered_with_descriptions():
    listing = available_checkers()
    assert BUILTIN_IDS <= set(listing)
    for checker_id in BUILTIN_IDS:
        assert listing[checker_id], f"{checker_id} has no one-line description"


def test_unknown_checker_error_names_alternatives():
    with pytest.raises(UnknownCheckerError) as excinfo:
        get_checker("no-such-pass")
    assert "no-such-pass" in str(excinfo.value)
    assert "wire-protocol" in str(excinfo.value)


def test_duplicate_registration_rejected_unless_replace():
    @register_checker("test-dummy")
    class Dummy(Checker):
        """A no-op checker for registry tests."""

    try:
        with pytest.raises(ValueError, match="already registered"):

            @register_checker("test-dummy")
            class DummyAgain(Checker):
                """Collides with Dummy."""

        @register_checker("test-dummy", replace=True)
        class DummyReplacement(Checker):
            """Replaces Dummy explicitly."""

        assert type(get_checker("test-dummy")).__name__ == "DummyReplacement"
    finally:
        unregister_checker("test-dummy")
    with pytest.raises(UnknownCheckerError):
        get_checker("test-dummy")


# ----------------------------------------------------------------------
# Inline suppressions and parse errors
# ----------------------------------------------------------------------

NOISY = (
    "def loop(q):\n"
    "    while True:\n"
    "        item = q.get()\n"
)


def test_inline_pragma_suppresses_finding():
    source = NOISY.replace(
        "q.get()", "q.get()  # repro: ignore[queue-discipline]"
    )
    result = analyze_sources(
        {"drain.py": source}, checkers=[get_checker("queue-discipline")]
    )
    assert result.findings == []
    assert result.suppressed == 1


def test_inline_pragma_wildcard_and_comment_line():
    source = NOISY.replace(
        "        item = q.get()",
        "        # repro: ignore[*]\n        item = q.get()",
    )
    result = analyze_sources(
        {"drain.py": source}, checkers=[get_checker("queue-discipline")]
    )
    assert result.findings == []
    assert result.suppressed == 1


def test_unparsable_file_yields_parse_error_finding():
    result = analyze_sources({"broken.py": "def oops(:\n"})
    assert [f.checker for f in result.findings] == ["parse-error"]
    assert not result.ok


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------


def _noisy_result():
    return analyze_sources(
        {"drain.py": NOISY}, checkers=[get_checker("queue-discipline")]
    )


def test_text_report_has_location_and_verdict():
    text = render_text(_noisy_result())
    assert "drain.py:3: error [queue-discipline]" in text
    assert text.endswith(
        "FAILED: 1 error(s), 0 warning(s) in 1 file(s) "
        "(0 baselined, 0 suppressed inline)"
    )


def test_json_report_shape():
    document = json.loads(render_json(_noisy_result()))
    assert document["tool"] == "repro-lint"
    assert document["ok"] is False
    assert document["counts"]["errors"] == 1
    (finding,) = document["findings"]
    assert finding["file"] == "drain.py"
    assert finding["line"] == 3
    assert finding["checker"] == "queue-discipline"


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------


def test_baseline_round_trip():
    findings = _noisy_result().findings
    entries = parse_baseline(
        render_baseline(findings).replace('"TODO"', '"reviewed: fixture"')
    )
    assert len(entries) == 1
    new, baselined, stale = split_baselined(findings, entries)
    assert (new, len(baselined), stale) == ([], 1, [])


def test_baseline_rejects_todo_and_missing_justification():
    rendered = render_baseline(_noisy_result().findings)
    with pytest.raises(BaselineError, match="real\\s+justification"):
        parse_baseline(rendered)
    with pytest.raises(BaselineError, match="missing"):
        parse_baseline('[[suppression]]\nchecker = "x"\n')


def test_baseline_is_line_independent_and_reports_stale():
    result = _noisy_result()
    entries = parse_baseline(
        render_baseline(result.findings).replace('"TODO"', '"fixture"')
    )
    moved = [
        Finding(
            file=f.file, line=f.line + 40, checker=f.checker, message=f.message
        )
        for f in result.findings
    ]
    new, baselined, stale = split_baselined(moved, entries)
    assert (new, len(baselined), stale) == ([], 1, [])

    unrelated = [
        Finding(file="other.py", line=1, checker="pickle-safety", message="m")
    ]
    new, baselined, stale = split_baselined(unrelated, entries)
    assert new == unrelated
    assert stale == entries


def test_baselined_findings_do_not_fail_the_run():
    base = _noisy_result()
    entries = parse_baseline(
        render_baseline(base.findings).replace('"TODO"', '"fixture"')
    )
    result = analyze_sources(
        {"drain.py": NOISY},
        checkers=[get_checker("queue-discipline")],
        baseline=entries,
    )
    assert result.ok
    assert result.baselined == 1
    assert result.findings == []
