"""Portfolio arbitration: parity, fault injection, the service path.

Three layers, mirroring how the controller is driven in production:

* **Parity** — real worker processes, Hypothesis design mixes, both SAT
  backends: whatever engine wins the race, the verdicts must equal what
  sequential JA-verification reports for the same design.
* **Arbitration fault injection** — a stub pool (the
  ``test_backoff`` idiom) makes the races fully deterministic: a hung
  loser cannot block the decision, cancel latencies are recorded as the
  acks arrive, and a stale loser verdict that was already in flight
  when the race was decided is rejected by the epoch check.
* **Service** — one real :class:`VerificationService` run, where the
  controller is stepped by the service dispatcher rather than the
  standalone drive loop.
"""

from __future__ import annotations

import queue as queue_mod
from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engines.result import PropStatus
from repro.multiprop.ja import JAOptions, JAVerifier
from repro.multiprop.report import PropOutcome
from repro.gen.random_designs import random_design
from repro.parallel import (
    ENGINE_NAMES,
    ParallelOptions,
    SeatScheduler,
    admit_portfolio,
    parse_engine_slate,
    portfolio_verify,
)
from repro.progress import AttemptCancelled, AttemptStarted, PortfolioDecided
from repro.session.config import ConfigError, VerificationConfig
from repro.ts.system import TransitionSystem

BACKENDS = ("cdcl", "cdcl-compact")


class TestSlateParsing:
    def test_none_and_blank_mean_full_slate(self):
        assert parse_engine_slate(None) == ENGINE_NAMES
        assert parse_engine_slate("") == ENGINE_NAMES
        assert parse_engine_slate("  ") == ENGINE_NAMES

    def test_subset_preserves_race_order(self):
        assert parse_engine_slate("bmc, rw") == ("bmc", "rw")
        assert parse_engine_slate(["ic3"]) == ("ic3",)

    def test_rejects_unknown_duplicate_and_empty(self):
        with pytest.raises(ValueError, match="unknown portfolio engine"):
            parse_engine_slate("rw,magic")
        with pytest.raises(ValueError, match="duplicate"):
            parse_engine_slate("rw,rw")
        with pytest.raises(ValueError, match="at least one"):
            parse_engine_slate([])

    def test_config_validation_surfaces_slate_errors(self):
        with pytest.raises(ConfigError, match="unknown portfolio engine"):
            VerificationConfig(
                strategy="portfolio", portfolio_engines="rw,magic"
            ).validate()
        with pytest.raises(ConfigError, match="seed"):
            VerificationConfig(strategy="portfolio", seed=-1).validate()
        VerificationConfig(
            strategy="portfolio", portfolio_engines="rw,ic3", seed=11
        ).validate()

    def test_schedule_only_rejected(self, toggler):
        with pytest.raises(ValueError, match="schedule_only"):
            portfolio_verify(toggler, ParallelOptions(schedule_only=True))


class TestParityWithSequentialJA:
    """Race verdicts == sequential JA verdicts, per property."""

    @staticmethod
    def _sequential(ts: TransitionSystem, backend: str) -> dict[str, PropStatus]:
        report = JAVerifier(ts, JAOptions(solver_backend=backend)).run("seq")
        return {name: o.status for name, o in report.outcomes.items()}

    @given(design_seed=st.integers(min_value=0, max_value=400))
    @settings(max_examples=5, deadline=None)
    def test_random_design_mix(self, design_seed: int):
        ts = TransitionSystem(random_design(design_seed))
        for backend in BACKENDS:
            expected = self._sequential(ts, backend)
            report = portfolio_verify(
                ts,
                ParallelOptions(
                    workers=2, solver_backend=backend, seed=design_seed
                ),
            )
            got = {name: o.status for name, o in report.outcomes.items()}
            assert got == expected, (design_seed, backend)
            races = report.stats["portfolio"]
            for name, race in races.items():
                assert race["winner"] in ENGINE_NAMES
                assert race["status"] == got[name].value
                assert report.outcomes[name].engine == race["winner"]

    def test_counter_both_backends(self, counter4):
        for backend in BACKENDS:
            expected = self._sequential(counter4, backend)
            report = portfolio_verify(
                counter4,
                ParallelOptions(workers=2, solver_backend=backend, seed=0),
            )
            assert {n: o.status for n, o in report.outcomes.items()} == expected
            assert report.stats["mode"] == "portfolio"
            assert report.stats["seed"] == 0


class _StubPool:
    """The scheduler-facing surface of ``WorkerPool``, in-process.

    One run per portfolio attempt; tests answer a chosen attempt's
    assignment to script the exact arrival order of verdicts.
    """

    def __init__(self, workers: int = 2) -> None:
        self.workers = workers
        self.closed = False
        self.context = None
        self._run_ids = 0
        self._open: set[int] = set()
        self._alive = set(range(workers))
        self.stats = {
            "runs": 0,
            "design_pickles": 0,
            "workers_spawned": workers,
            "workers_replaced": 0,
        }
        self.messages: deque = deque()
        self.cancelled_runs: list[int] = []

    def acquire_messages(self, owner) -> None:
        pass

    @property
    def open_runs(self) -> list[int]:
        return sorted(self._open)

    def open_run(self, ts, settings, exchange=None) -> int:
        run_id = self._run_ids
        self._run_ids += 1
        self._open.add(run_id)
        self.stats["runs"] += 1
        for worker_id in sorted(self._alive):
            self.messages.append(("ready", run_id, worker_id))
        return run_id

    def attach_worker(self, run_id: int, worker_id: int) -> None:
        self.messages.append(("ready", run_id, worker_id))

    def assign(self, worker_id, job, run_id=None) -> None:
        pass

    def next_message(self, timeout: float = 0.2):
        if self.messages:
            return self.messages.popleft()
        raise queue_mod.Empty

    def cancel_run(self, run_id: int) -> None:
        self.cancelled_runs.append(run_id)

    def close_run(self, run_id: int) -> None:
        self._open.discard(run_id)

    def worker_alive(self, worker_id: int) -> bool:
        return worker_id in self._alive

    def failed_workers(self) -> list[int]:
        return []

    def any_alive(self) -> bool:
        return bool(self._alive)

    def start_missing_workers(self) -> list[int]:
        return []

    def respawn_workers(self, worker_ids) -> list[int]:
        return []

    def ensure_workers(self):
        return [], []


def _drain(scheduler, limit: int = 200) -> None:
    for _ in range(limit):
        try:
            message = scheduler.pool.next_message(timeout=0)
        except queue_mod.Empty:
            return
        scheduler._dispatch_message(message)
    raise AssertionError("message pump did not drain")


def _seat_of(scheduler, run_id: int) -> tuple[int, str]:
    for worker_id, (rid, name) in scheduler.assignments.items():
        if rid == run_id:
            return worker_id, name
    raise AssertionError(f"run {run_id} holds no seat")


def _answer(scheduler, job, status: PropStatus, **fields) -> None:
    """Serve one attempt's assignment with a scripted verdict."""
    worker_id, name = _seat_of(scheduler, job.run_id)
    scheduler._dispatch_message(
        (
            "result",
            job.run_id,
            worker_id,
            PropOutcome(name=name, status=status, local=True, **fields),
        )
    )


def _ack_cancel(scheduler, job) -> None:
    """Deliver the worker-side acknowledgement of a run cancel."""
    worker_id, name = _seat_of(scheduler, job.run_id)
    scheduler._dispatch_message(("cancelled", job.run_id, worker_id, name))


class TestArbitrationFaultInjection:
    """Deterministic races on the stub pool — no processes, no sleeps."""

    def _race(self, ts, order, engines, *, workers=2, events=None):
        pool = _StubPool(workers=workers)
        scheduler = SeatScheduler(pool)
        controller = admit_portfolio(
            scheduler,
            ts,
            ParallelOptions(
                workers=workers,
                exchange=False,
                portfolio_engines=engines,
                order=list(order),
            ),
            "stub-design",
            events.append if events is not None else None,
            list(order),
        )
        _drain(scheduler)
        return pool, scheduler, controller

    def test_first_verdict_wins_despite_hung_loser(self, toggler):
        # bmc's attempt hangs (its seat never answers): the rw verdict
        # must decide the property and finish the race anyway.
        events: list = []
        pool, scheduler, controller = self._race(
            toggler, ["never_q"], ("rw", "bmc"), events=events
        )
        group = controller._groups["never_q"]
        rw, bmc = group.attempts["rw"], group.attempts["bmc"]
        assert len(scheduler.assignments) == 2  # both attempts seated
        _answer(scheduler, rw, PropStatus.FAILS, cex_depth=2)
        assert controller.finished
        assert group.winner == "rw"
        assert group.outcome.status is PropStatus.FAILS
        # The hung loser was cancelled through the per-run path ...
        assert pool.cancelled_runs == [bmc.run_id]
        # ... and until its ack arrives, its latency reads "in flight".
        report = controller.build_report(pool)
        assert report.stats["portfolio"]["never_q"]["cancelled"] == {"bmc": None}
        # The ack lands after the report: latency becomes measurable.
        _ack_cancel(scheduler, bmc)
        assert bmc.finished
        late = controller.build_report(pool)
        latency = late.stats["portfolio"]["never_q"]["cancelled"]["bmc"]
        assert isinstance(latency, float) and latency >= 0.0
        cancelled = [e for e in events if isinstance(e, AttemptCancelled)]
        assert [e.engine for e in cancelled] == ["bmc"]
        assert cancelled[0].latency_s == latency

    def test_stale_loser_verdict_rejected_by_epoch(self, toggler):
        # Both verdicts are already in flight when the pump runs: the
        # first decides, the second — even a *conflicting definitive*
        # verdict — must be dropped by the epoch check.
        events: list = []
        pool, scheduler, controller = self._race(
            toggler, ["never_q"], ("rw", "bmc"), events=events
        )
        group = controller._groups["never_q"]
        controller._pumping = True  # hold arbitration: verdicts race in
        _answer(scheduler, group.attempts["rw"], PropStatus.FAILS, cex_depth=2)
        _answer(scheduler, group.attempts["bmc"], PropStatus.HOLDS)
        controller._pumping = False
        controller._pump()
        assert controller.finished
        assert group.winner == "rw"
        assert group.outcome.status is PropStatus.FAILS
        decided = [e for e in events if isinstance(e, PortfolioDecided)]
        assert len(decided) == 1 and decided[0].winner == "rw"
        stale = [e for e in events if isinstance(e, AttemptCancelled)]
        assert [e.engine for e in stale] == ["bmc"]
        assert stale[0].latency_s is not None
        # Nothing was cancelled pool-side: the loser had already
        # finished; only its verdict was rejected.
        assert pool.cancelled_runs == []
        report = controller.build_report(pool)
        race = report.stats["portfolio"]["never_q"]
        assert race["winner"] == "rw"
        assert isinstance(race["cancelled"]["bmc"], float)

    def test_all_attempts_exhausted_settles_unknown(self, toggler):
        events: list = []
        pool, scheduler, controller = self._race(
            toggler, ["never_q"], ("rw", "bmc"), events=events
        )
        group = controller._groups["never_q"]
        _answer(scheduler, group.attempts["rw"], PropStatus.UNKNOWN)
        assert not controller.finished  # bmc still racing
        _answer(scheduler, group.attempts["bmc"], PropStatus.UNKNOWN)
        assert controller.finished
        assert group.winner is None
        decided = [e for e in events if isinstance(e, PortfolioDecided)]
        assert decided[-1].winner is None
        report = controller.build_report(pool)
        assert report.outcomes["never_q"].status is PropStatus.UNKNOWN
        assert controller.error is None

    def test_attempt_error_without_winner_fails_the_race(self, toggler):
        pool, scheduler, controller = self._race(
            toggler, ["never_q"], ("rw", "bmc")
        )
        group = controller._groups["never_q"]
        worker_id, name = _seat_of(scheduler, group.attempts["rw"].run_id)
        scheduler._dispatch_message(
            ("error", group.attempts["rw"].run_id, worker_id, name, "boom")
        )
        _answer(scheduler, group.attempts["bmc"], PropStatus.UNKNOWN)
        assert controller.finished
        assert isinstance(controller.error, RuntimeError)
        assert "boom" in str(controller.error)

    def test_attempt_error_masked_by_a_winner(self, toggler):
        # An engine blowing up is irrelevant once a sibling decided.
        pool, scheduler, controller = self._race(
            toggler, ["never_q"], ("rw", "bmc")
        )
        group = controller._groups["never_q"]
        worker_id, name = _seat_of(scheduler, group.attempts["rw"].run_id)
        scheduler._dispatch_message(
            ("error", group.attempts["rw"].run_id, worker_id, name, "boom")
        )
        _answer(scheduler, group.attempts["bmc"], PropStatus.FAILS, cex_depth=1)
        assert controller.finished and controller.error is None
        assert group.winner == "bmc"
        report = controller.build_report(pool)
        (entry,) = report.stats["portfolio"]["never_q"]["errors"]
        assert entry.startswith("rw:") and "boom" in entry

    def test_cancel_all_settles_every_race(self, toggler):
        events: list = []
        pool, scheduler, controller = self._race(
            toggler, ["never_r", "never_q"], ("rw", "bmc"), events=events
        )
        seated = [
            scheduler.jobs[rid] for rid, _ in scheduler.assignments.values()
        ]
        controller.cancel_all()
        for job in seated:  # backlogged attempts settled synchronously
            if not job.finished:
                _ack_cancel(scheduler, job)
        assert controller.finished and controller.cancelled
        assert controller.error is None
        report = controller.build_report(pool)
        for name in ("never_r", "never_q"):
            assert report.outcomes[name].status is PropStatus.UNKNOWN
        started = [e for e in events if isinstance(e, AttemptStarted)]
        assert len(started) == 4

    def test_per_property_races_are_independent(self, toggler):
        # Deciding one property must not disturb the other's race.
        pool, scheduler, controller = self._race(
            toggler, ["never_r", "never_q"], ("rw", "bmc"), workers=4
        )
        q_group = controller._groups["never_q"]
        r_group = controller._groups["never_r"]
        _answer(scheduler, q_group.attempts["rw"], PropStatus.FAILS, cex_depth=2)
        assert q_group.decided and not r_group.decided
        assert not controller.finished
        _answer(scheduler, r_group.attempts["bmc"], PropStatus.HOLDS)
        assert controller.finished
        report = controller.build_report(pool)
        assert report.outcomes["never_q"].status is PropStatus.FAILS
        assert report.outcomes["never_r"].status is PropStatus.HOLDS
        races = report.stats["portfolio"]
        assert races["never_q"]["winner"] == "rw"
        assert races["never_r"]["winner"] == "bmc"


class TestServicePortfolio:
    """The controller under the service dispatcher (real processes)."""

    def test_submit_portfolio_job(self, toggler):
        from repro.service import VerificationService

        with VerificationService(workers=2) as service:
            report = service.submit(
                toggler, strategy="portfolio", seed=5, exchange=False
            ).result(timeout=120)
        assert report.method == "portfolio"
        assert report.outcomes["never_r"].status is PropStatus.HOLDS
        assert report.outcomes["never_q"].status is PropStatus.FAILS
        races = report.stats["portfolio"]
        assert races["never_q"]["winner"] in ("rw", "bmc", "kind", "ic3")
        # Only a prover can certify the HOLDS verdict.
        assert races["never_r"]["winner"] in ("kind", "ic3")
        assert report.stats["seed"] == 5

    def test_seeded_service_runs_reproduce(self, counter4):
        from repro.service import VerificationService

        reports = []
        with VerificationService(workers=2) as service:
            for _ in range(2):
                reports.append(
                    service.submit(
                        counter4,
                        strategy="portfolio",
                        portfolio_engines="rw,ic3",
                        seed=42,
                        exchange=False,
                    ).result(timeout=120)
                )
        first, second = reports
        assert {n: o.status for n, o in first.outcomes.items()} == {
            n: o.status for n, o in second.outcomes.items()
        }
        assert first.stats["engines"] == ["rw", "ic3"]
