"""Per-seat crash backoff, seat quotas, and revival-path regressions.

Most tests drive a :class:`SeatScheduler` against an in-process stub
pool: seats are plain set entries, crashes are ``kill()`` calls, and
messages are a deque — so the crash bookkeeping (transition-based
accounting, the exponential schedule, reset-on-healthy, the seatless
backlog drain) is exercised deterministically, with no processes and no
sleeps.  The one fork-based test at the bottom injects a real
crash-looping worker through the service stack.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import time
from collections import deque

import pytest

from repro.engines.result import PropStatus
from repro.multiprop.report import PropOutcome
from repro.parallel import ParallelOptions, SeatScheduler
from repro.parallel import worker as worker_mod
from repro.parallel.worker import pool_worker_main  # real entry, pre-patch

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="crash injection requires the fork start method",
)


class _StubPool:
    """The scheduler-facing surface of :class:`WorkerPool`, in-process.

    Seat liveness is a set, the message stream a deque, ``kill()`` the
    crash injector.  ``open_run``/``attach_worker`` push the ``ready``
    acks a real worker would send, and ``assign`` just records — tests
    answer assignments by feeding ``result`` messages back through the
    scheduler.
    """

    def __init__(self, workers: int = 2) -> None:
        self.workers = workers
        self.closed = False
        self.context = None
        self._run_ids = 0
        self._open: set[int] = set()
        self._started = set(range(workers))
        self._alive = set(range(workers))
        self.stats = {
            "runs": 0,
            "design_pickles": 0,
            "workers_spawned": workers,
            "workers_replaced": 0,
        }
        self.messages: deque = deque()
        self.assigned: list[tuple[int, int, str]] = []
        self.respawn_calls: list[list[int]] = []
        self.cancelled_runs: list[int] = []

    # -- crash injection ------------------------------------------------
    def kill(self, worker_id: int) -> None:
        self._alive.discard(worker_id)

    # -- WorkerPool surface ---------------------------------------------
    def acquire_messages(self, owner) -> None:
        self._owner = owner

    @property
    def open_runs(self) -> list[int]:
        return sorted(self._open)

    def open_run(self, ts, settings, exchange=None) -> int:
        run_id = self._run_ids
        self._run_ids += 1
        self._open.add(run_id)
        self.stats["runs"] += 1
        for worker_id in sorted(self._alive):
            self.messages.append(("ready", run_id, worker_id))
        return run_id

    def attach_worker(self, run_id: int, worker_id: int) -> None:
        self.messages.append(("ready", run_id, worker_id))

    def assign(self, worker_id, job, run_id=None) -> None:
        self.assigned.append((worker_id, run_id, job.name))

    def next_message(self, timeout: float = 0.2):
        if self.messages:
            return self.messages.popleft()
        raise queue_mod.Empty

    def cancel_run(self, run_id: int) -> None:
        self.cancelled_runs.append(run_id)

    def close_run(self, run_id: int) -> None:
        self._open.discard(run_id)

    def worker_alive(self, worker_id: int) -> bool:
        return worker_id in self._alive

    def failed_workers(self) -> list[int]:
        return sorted(self._started - self._alive)

    def any_alive(self) -> bool:
        return bool(self._alive)

    def start_missing_workers(self) -> list[int]:
        started = [w for w in range(self.workers) if w not in self._started]
        for worker_id in started:
            self._started.add(worker_id)
            self._alive.add(worker_id)
            self.stats["workers_spawned"] += 1
        return started

    def respawn_workers(self, worker_ids) -> list[int]:
        requested = sorted(set(worker_ids))
        self.respawn_calls.append(requested)
        fresh = []
        for worker_id in requested:
            if worker_id in self._started and worker_id not in self._alive:
                self._alive.add(worker_id)
                self.stats["workers_replaced"] += 1
                fresh.append(worker_id)
        return fresh

    def ensure_workers(self):
        replaced = self.respawn_workers(sorted(self._started))
        return self.start_missing_workers(), replaced


def _scheduler(pool, **kwargs) -> SeatScheduler:
    kwargs.setdefault("revive_seats", True)
    return SeatScheduler(pool, **kwargs)


def _admit(scheduler, names, *, priority=1.0, max_seats=None, job_id=None):
    options = ParallelOptions(
        workers=scheduler.pool.workers,
        exchange=False,
        order=list(names),
        max_seats=max_seats,
    )
    return scheduler.admit(
        object(),  # the stub never touches the design
        options,
        "stub-design",
        None,
        list(names),
        priority=priority,
        job_id=job_id,
    )


def _pump(scheduler, limit: int = 200) -> None:
    """Deliver every queued message (ready acks trigger assignment)."""
    for _ in range(limit):
        try:
            message = scheduler.pool.next_message(timeout=0)
        except queue_mod.Empty:
            return
        scheduler._dispatch_message(message)
    raise AssertionError("message pump did not drain")


def _serve(scheduler, worker_id: int) -> str:
    """Answer one seat's current assignment with a HOLDS result."""
    run_id, name = scheduler.assignments[worker_id]
    scheduler._dispatch_message(
        (
            "result",
            run_id,
            worker_id,
            PropOutcome(name=name, status=PropStatus.HOLDS, local=True),
        )
    )
    return name


def _serve_everything(scheduler, limit: int = 200) -> None:
    for _ in range(limit):
        _pump(scheduler)
        if not scheduler.assignments:
            return
        _serve(scheduler, next(iter(scheduler.assignments)))
    raise AssertionError("assignments did not drain")


class TestReviveAccounting:
    def test_revive_touches_only_seats_actually_lost(self):
        # Regression: the old path charged its revive budget with
        # len(started + replaced) from ensure_workers(), counting seats
        # it never lost.  Now only failed seats are respawned/accounted.
        pool = _StubPool(workers=3)
        scheduler = _scheduler(pool)
        _admit(scheduler, ["p0", "p1"])
        _pump(scheduler)
        spawned_before = pool.stats["workers_spawned"]
        pool.kill(1)
        scheduler._reap_crashed()
        assert pool.respawn_calls[-1] == [1]
        assert pool.stats["workers_replaced"] == 1
        assert pool.stats["workers_spawned"] == spawned_before
        assert pool.worker_alive(1)

    def test_repeated_reaps_account_one_crash(self):
        pool = _StubPool(workers=2)
        scheduler = _scheduler(pool, backoff_base=60.0, backoff_cap=60.0)
        _admit(scheduler, ["p0"])
        _pump(scheduler)
        pool.kill(0)
        scheduler._reap_crashed()  # transition: accounted
        pool.kill(0)  # first crash respawns immediately; kill again
        scheduler._reap_crashed()
        crashes = scheduler.seat_health[0].crashes
        scheduler._reap_crashed()  # same corpse, reaped again
        scheduler._reap_crashed()
        assert scheduler.seat_health[0].crashes == crashes == 2
        assert scheduler.seat_health[0].consecutive == 2


class TestFinishedJobsAreSealed:
    def test_crash_between_finish_and_forget_leaves_job_intact(self):
        # The service calls forget() from on_finish, but a scheduler
        # may reap a crash while a finished job is still registered —
        # its sealed state (ready set, outcomes) must not change.
        pool = _StubPool(workers=2)
        scheduler = _scheduler(pool)
        job = _admit(scheduler, ["p0"])
        _serve_everything(scheduler)
        assert job.finished and job.run_id in scheduler.jobs
        ready_before = set(job.ready)
        outcomes_before = dict(job.outcomes)
        pool.kill(0)
        scheduler._reap_crashed()
        assert job.ready == ready_before
        assert job.outcomes == outcomes_before
        assert job.finished and job.error is None


class TestSeatlessBacklogDrains:
    def test_retried_property_resolves_after_total_seat_loss(self):
        # Kill every seat while a property is assigned: the retry lands
        # in the backlog with nobody alive, the revived seat's ready
        # ack must drain it.
        pool = _StubPool(workers=1)
        scheduler = _scheduler(pool)
        job = _admit(scheduler, ["p0"])
        _pump(scheduler)
        assert scheduler.assignments[0] == (job.run_id, "p0")
        pool.kill(0)
        scheduler._reap_crashed()  # retry queued, seat respawned
        assert job.redispatched == 1
        assert not job.finished
        _serve_everything(scheduler)
        assert job.finished
        assert job.outcomes["p0"].status is PropStatus.HOLDS

    def test_degrade_waits_for_backoff_pending_revival(self):
        pool = _StubPool(workers=1)
        scheduler = _scheduler(pool, backoff_base=60.0, backoff_cap=60.0)
        job = _admit(scheduler, ["p0"])
        pool.kill(0)
        scheduler._reap_crashed()  # crash 1: immediate respawn
        pool.kill(0)
        scheduler._reap_crashed()  # crash 2: 60s backoff, all seats dead
        assert not pool.any_alive()
        # No seat alive, but a respawn is owed: the job must wait, not
        # degrade to UNKNOWN.
        assert not job.finished and job.pending == {"p0"}
        scheduler.seat_health[0].not_before = 0.0  # the environment heals
        scheduler._reap_crashed()
        assert pool.worker_alive(0)
        _serve_everything(scheduler)
        assert job.outcomes["p0"].status is PropStatus.HOLDS

    def test_non_revivable_scheduler_still_degrades(self):
        pool = _StubPool(workers=1)
        scheduler = _scheduler(pool, revive_seats=False)
        job = _admit(scheduler, ["p0"])
        _pump(scheduler)
        pool.kill(0)
        scheduler._reap_crashed()
        assert job.finished
        assert job.outcomes["p0"].status is PropStatus.UNKNOWN


class TestBackoffSchedule:
    def test_delay_doubles_from_base_and_caps(self):
        pool = _StubPool(workers=1)
        scheduler = _scheduler(pool, backoff_base=5.0, backoff_cap=8.0)
        _admit(scheduler, ["p0"])
        health = scheduler._seat_health(0)
        observed = []
        for _ in range(4):
            pool.kill(0)
            scheduler._reap_crashed()
            observed.append(health.delay)
            health.not_before = 0.0  # skip the wait, force the respawn
            scheduler._reap_crashed()
            assert pool.worker_alive(0)
        assert observed == [0.0, 5.0, 8.0, 8.0]
        assert health.crashes == 4

    def test_backoff_delays_the_respawn(self):
        pool = _StubPool(workers=1)
        scheduler = _scheduler(pool, backoff_base=60.0, backoff_cap=60.0)
        _admit(scheduler, ["p0"])
        pool.kill(0)
        scheduler._reap_crashed()  # immediate
        assert pool.worker_alive(0)
        pool.kill(0)
        respawns_before = pool.stats["workers_replaced"]
        scheduler._reap_crashed()
        scheduler._reap_crashed()
        assert not pool.worker_alive(0)
        assert pool.stats["workers_replaced"] == respawns_before
        assert scheduler.seat_health[0].not_before > time.monotonic() + 50

    def test_maintain_revives_an_idle_pool(self):
        # Between jobs the service has nothing to step; maintain() must
        # still fire a due respawn so full strength never waits for the
        # next admission.
        pool = _StubPool(workers=1)
        scheduler = _scheduler(pool, backoff_base=60.0, backoff_cap=60.0)
        job = _admit(scheduler, ["p0"])
        _serve_everything(scheduler)
        assert job.finished
        pool.kill(0)
        scheduler._last_reap = 0.0
        scheduler.maintain()  # accounts the crash (crash 1: immediate)
        assert pool.worker_alive(0)
        pool.kill(0)
        scheduler._last_reap = 0.0
        scheduler.maintain()  # crash 2: 60s backoff, still down
        assert not pool.worker_alive(0)
        scheduler.seat_health[0].not_before = 0.0  # backoff expires
        scheduler._last_reap = 0.0
        scheduler.maintain()
        assert pool.worker_alive(0)
        # Throttle: a just-reaped scheduler skips the liveness sweep.
        pool.kill(0)
        scheduler.maintain()
        assert scheduler.seat_health[0].crashes == 2

    def test_served_property_resets_the_schedule(self):
        pool = _StubPool(workers=1)
        scheduler = _scheduler(pool, backoff_base=60.0, backoff_cap=60.0)
        job = _admit(scheduler, ["p0", "p1"])
        _pump(scheduler)
        pool.kill(0)
        scheduler._reap_crashed()  # crash 1 (p0 requeued), respawn now
        _pump(scheduler)
        _serve(scheduler, 0)  # healthy service: streak resets
        health = scheduler.seat_health[0]
        assert health.consecutive == 0 and health.delay == 0.0
        pool.kill(0)
        scheduler._reap_crashed()
        # Post-reset this counts as a *first* crash again: immediate.
        assert pool.worker_alive(0)
        assert health.consecutive == 1
        _serve_everything(scheduler)
        assert job.finished and job.error is None


class TestSeatQuota:
    def test_max_seats_caps_a_jobs_held_seats(self):
        pool = _StubPool(workers=4)
        scheduler = _scheduler(pool)
        capped = _admit(
            scheduler, [f"a{i}" for i in range(4)], max_seats=1, job_id="capped"
        )
        greedy = _admit(
            scheduler, [f"b{i}" for i in range(4)], job_id="greedy"
        )
        _pump(scheduler)
        held: dict[int, int] = {}
        for run_id, _ in scheduler.assignments.values():
            held[run_id] = held.get(run_id, 0) + 1
        assert held[capped.run_id] == 1
        assert held[greedy.run_id] == 3
        # The quota holds at every refill, and both jobs still finish.
        for _ in range(40):
            if not scheduler.assignments:
                break
            _serve(scheduler, next(iter(scheduler.assignments)))
            _pump(scheduler)
            capped_held = sum(
                1
                for run_id, _ in scheduler.assignments.values()
                if run_id == capped.run_id
            )
            assert capped_held <= 1
        assert capped.finished and greedy.finished

    def test_admit_rejects_non_positive_quota(self):
        pool = _StubPool(workers=1)
        scheduler = _scheduler(pool)
        with pytest.raises(ValueError, match="max_seats"):
            _admit(scheduler, ["p0"], max_seats=0)

    def test_scheduler_rejects_bad_backoff_knobs(self):
        with pytest.raises(ValueError, match="backoff"):
            SeatScheduler(_StubPool(), backoff_base=0.0)
        with pytest.raises(ValueError, match="backoff"):
            SeatScheduler(_StubPool(), backoff_base=2.0, backoff_cap=1.0)


class TestSchedulerStats:
    def test_snapshot_reports_occupancy_and_backoff(self):
        pool = _StubPool(workers=2)
        scheduler = _scheduler(pool, backoff_base=60.0, backoff_cap=60.0)
        _admit(scheduler, ["p0", "p1"], job_id="job-0")
        _pump(scheduler)
        stats = scheduler.stats()
        assert stats.workers == 2 and stats.alive == 2
        assert stats.busy == 2 and stats.idle == 0
        busy_seat = stats.seats[0]
        assert busy_seat.busy and busy_seat.job == "job-0"
        assert busy_seat.prop in ("p0", "p1")
        pool.kill(0)
        scheduler._reap_crashed()  # crash 1: respawned immediately
        pool.kill(0)
        scheduler._reap_crashed()  # crash 2: waiting out 60s backoff
        snap = scheduler.stats()
        seat = snap.seats[0]
        assert not seat.alive
        assert seat.crashes == 2 and seat.consecutive_crashes == 2
        assert seat.backoff_s == 60.0
        assert 0.0 < seat.respawn_in_s <= 60.0
        as_dict = snap.as_dict()
        assert as_dict["runs"] == pool.stats["runs"]  # legacy splice
        assert as_dict["seats"][0]["crashes"] == 2


def _crash_loop_until(marker: str):
    """Seat 0 dies instantly on every spawn until ``marker`` exists."""

    def entry(worker_id, ctrl_queue, out_queue, cancel_epoch, stop_event):
        if worker_id == 0 and not os.path.exists(marker):
            os._exit(1)
        pool_worker_main(
            worker_id, ctrl_queue, out_queue, cancel_epoch, stop_event
        )

    return entry


@pytest.mark.slow
@needs_fork
class TestCrashLoopFaultInjection:
    def test_crash_loop_is_throttled_and_heals(
        self, toggler, tmp_path, monkeypatch
    ):
        from repro.service import VerificationService

        marker = str(tmp_path / "healed")
        monkeypatch.setattr(
            worker_mod, "pool_worker_main", _crash_loop_until(marker)
        )
        with VerificationService(
            workers=2,
            start_method="fork",
            seat_backoff_base=0.2,
            seat_backoff_cap=1.0,
        ) as service:
            # Seat 0 crash-loops from the first spawn; seat 1 must
            # carry every job to correct verdicts regardless.
            for _ in range(2):
                report = service.submit(
                    toggler, strategy="parallel-ja", exchange=False
                ).result(timeout=120)
                assert report.outcomes["never_r"].status is PropStatus.HOLDS
                assert report.outcomes["never_q"].status is PropStatus.FAILS
            stats = service.stats()
            seat0 = stats.pool.seats[0]
            assert seat0.crashes >= 1
            assert seat0.consecutive_crashes == seat0.crashes
            # Exponential backoff bounds the respawn rate: the two runs
            # plus snapshotting span a few seconds at most, which the
            # 0.2s-base/1s-cap schedule limits to well under 20
            # respawns.  A hot loop would show hundreds.
            assert stats.pool.counters["workers_replaced"] <= 20
            # The environment heals: idle maintenance (or the next
            # admission) revives the seat — its pending backoff skipped
            # to keep the test fast — and full strength returns.
            with open(marker, "w"):
                pass
            service._scheduler.seat_health[0].not_before = 0.0
            report = service.submit(
                toggler, strategy="parallel-ja", exchange=False
            ).result(timeout=120)
            assert report.outcomes["never_q"].status is PropStatus.FAILS
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                stats = service.stats()
                if stats.pool.alive == 2:
                    break
                time.sleep(0.1)
            assert stats.pool.alive == 2, "service never recovered seat 0"
