"""Persistent WorkerPool semantics: reuse, isolation, crash replacement."""

from __future__ import annotations

import pytest

from repro.engines.result import PropStatus
from repro.parallel import WorkerPool, default_pool, shutdown_default_pool
from repro.progress import PoolAttached, WorkerStarted
from repro.session import ConfigError, Session


@pytest.fixture
def pool():
    with WorkerPool(workers=2) as p:
        yield p


class TestPoolReuse:
    def test_design_is_pickled_once_across_runs(self, pool, toggler):
        reports = [
            Session(toggler, strategy="parallel-ja", pool=pool).run()
            for _ in range(3)
        ]
        assert pool.stats["runs"] == 3
        assert pool.stats["design_pickles"] == 1
        assert pool.stats["workers_spawned"] == 2
        for report in reports:
            assert report.outcomes["never_r"].status is PropStatus.HOLDS
            assert report.outcomes["never_q"].status is PropStatus.FAILS
            assert report.stats["pool"] == "persistent"

    def test_runs_are_isolated(self, pool, toggler, counter4):
        """Verdicts and clause traffic never leak between runs."""
        first = Session(toggler, strategy="parallel-ja", pool=pool).run()
        second = Session(counter4, strategy="parallel-ja", pool=pool).run()
        third = Session(toggler, strategy="parallel-ja", pool=pool).run()
        assert set(first.outcomes) == {"never_r", "never_q"}
        assert set(second.outcomes) == {"P0", "P1"}
        assert set(third.outcomes) == set(first.outcomes)
        assert {n: o.status for n, o in third.outcomes.items()} == {
            n: o.status for n, o in first.outcomes.items()
        }
        # Two distinct designs were shipped; each pickled exactly once.
        assert pool.stats["design_pickles"] == 2
        assert pool.stats["designs_cached"] == 2

    def test_crashed_worker_is_replaced_before_next_run(self, pool, toggler):
        first = Session(toggler, strategy="parallel-ja", pool=pool).run()
        assert first.stats["worker_crashes"] == 0
        # Simulate an OOM kill between runs.
        victim = pool._slots[0].process
        victim.terminate()
        victim.join()
        events = []
        second = Session(
            toggler, strategy="parallel-ja", pool=pool, on_event=events.append
        ).run()
        assert pool.stats["workers_replaced"] == 1
        assert pool.stats["workers_spawned"] == 3
        # The replacement ran at full strength: complete, crash-free run.
        assert second.outcomes["never_r"].status is PropStatus.HOLDS
        assert second.outcomes["never_q"].status is PropStatus.FAILS
        assert second.stats["worker_crashes"] == 0
        restarted = [e for e in events if isinstance(e, WorkerStarted)]
        assert [e.worker for e in restarted] == [0]

    def test_pool_attached_event_reports_reuse(self, pool, toggler):
        events = []
        Session(toggler, strategy="parallel-ja", pool=pool,
                on_event=events.append).run()
        first = next(e for e in events if isinstance(e, PoolAttached))
        assert first.workers == 2
        assert first.persistent is True
        assert first.runs == 0
        events.clear()
        Session(toggler, strategy="parallel-ja", pool=pool,
                on_event=events.append).run()
        second = next(e for e in events if isinstance(e, PoolAttached))
        assert second.runs == 1
        # Warm pool: no new workers were spawned on the second run.
        assert not any(isinstance(e, WorkerStarted) for e in events)

    def test_ephemeral_runs_do_not_share_state(self, toggler):
        first = Session(toggler, strategy="parallel-ja", workers=2).run()
        second = Session(toggler, strategy="parallel-ja", workers=2).run()
        assert first.stats["pool"] == "ephemeral"
        assert first.stats["design_pickles"] == 1
        assert second.stats["design_pickles"] == 1  # a fresh pool each time


class TestPoolLifecycle:
    def test_begin_run_rejects_concurrent_runs(self, pool, toggler):
        pool.ensure_workers()
        from repro.parallel.worker import WorkerSettings

        pool.begin_run(toggler, WorkerSettings())
        try:
            with pytest.raises(RuntimeError, match="still active"):
                pool.begin_run(toggler, WorkerSettings())
        finally:
            pool.end_run()

    def test_shutdown_is_idempotent_and_closes(self, toggler):
        pool = WorkerPool(workers=1)
        Session(toggler, strategy="parallel-ja", pool=pool).run()
        pool.shutdown()
        pool.shutdown()
        assert pool.closed
        with pytest.raises(RuntimeError):
            pool.ensure_workers()

    def test_config_rejects_closed_pool(self, toggler):
        pool = WorkerPool(workers=1)
        pool.shutdown()
        with pytest.raises(ConfigError, match="shut down"):
            Session(toggler, strategy="parallel-ja", pool=pool)

    def test_config_rejects_non_pool(self, toggler):
        with pytest.raises(ConfigError, match="WorkerPool"):
            Session(toggler, strategy="parallel-ja", pool=object())

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=0)

    def test_default_pool_is_shared_and_rebuildable(self):
        shutdown_default_pool()
        try:
            first = default_pool(workers=1)
            assert default_pool() is first
            shutdown_default_pool()
            second = default_pool(workers=1)
            assert second is not first
            assert not second.closed
        finally:
            shutdown_default_pool()

    def test_atexit_sweep_covers_every_live_pool(self):
        from repro.parallel import shutdown_all_pools

        explicit = WorkerPool(workers=1)
        shared = default_pool(workers=1)
        try:
            shutdown_all_pools()
            assert explicit.closed
            assert shared.closed
        finally:
            shutdown_all_pools()


class TestSeatLeasing:
    """The multi-run protocol under the service's scheduler."""

    def test_two_runs_open_concurrently_and_route_messages(
        self, pool, toggler, counter4
    ):
        import queue as queue_mod

        from repro.parallel.worker import PropertyJob, WorkerSettings

        pool.ensure_workers()
        first = pool.open_run(toggler, WorkerSettings(clause_reuse=False))
        second = pool.open_run(counter4, WorkerSettings(clause_reuse=False))
        assert pool.open_runs == [first, second]
        # Wait for every seat to ack both setups, then run one property
        # of each run on the same seat.
        acks = []
        while len(acks) < 2 * pool.workers:
            acks.append(pool.next_message(timeout=10.0))
        assert {(m[0], m[1]) for m in acks} == {
            ("ready", first), ("ready", second)
        }
        pool.assign(0, PropertyJob(name="never_q"), run_id=first)
        pool.assign(0, PropertyJob(name="P1"), run_id=second)
        outcomes = {}
        try:
            while len(outcomes) < 2:
                message = pool.next_message(timeout=30.0)
                if message[0] == "result":
                    outcomes[message[1]] = message[3]
        except queue_mod.Empty:  # pragma: no cover - diagnosis aid
            pytest.fail(f"only {list(outcomes)} of 2 results arrived")
        assert outcomes[first].name == "never_q"
        assert outcomes[first].status is PropStatus.FAILS
        assert outcomes[second].name == "P1"
        assert outcomes[second].status is PropStatus.HOLDS
        pool.close_run(first)
        pool.close_run(second)
        assert pool.open_runs == []

    def test_cancel_run_spares_younger_siblings(self, pool, toggler):
        from repro.parallel.worker import PropertyJob, WorkerSettings

        pool.ensure_workers()
        old = pool.open_run(toggler, WorkerSettings())
        young = pool.open_run(toggler, WorkerSettings())
        pool.cancel_run(old)  # oldest: epoch path
        assert pool.run_cancelled(old)
        assert not pool.run_cancelled(young)
        # The cancelled run's jobs decline; the sibling's still execute.
        acks = 0
        while acks < 2 * pool.workers:
            if pool.next_message(timeout=10.0)[0] == "ready":
                acks += 1
        pool.assign(0, PropertyJob(name="never_q"), run_id=old)
        pool.assign(1, PropertyJob(name="never_q"), run_id=young)
        seen = {}
        while len(seen) < 2:
            message = pool.next_message(timeout=30.0)
            if message[0] in ("cancelled", "result"):
                seen[message[1]] = message[0]
        assert seen == {old: "cancelled", young: "result"}
        pool.close_run(old)
        pool.close_run(young)

    def test_cancel_younger_run_spares_the_oldest(self, pool, toggler):
        from repro.parallel.worker import WorkerSettings

        pool.ensure_workers()
        old = pool.open_run(toggler, WorkerSettings())
        young = pool.open_run(toggler, WorkerSettings())
        pool.cancel_run(young)  # non-oldest: per-worker cancel messages
        assert pool.run_cancelled(young)
        assert not pool.run_cancelled(old)
        pool.close_run(old)
        pool.close_run(young)

    def test_begin_run_refused_while_leased_runs_open(self, pool, toggler):
        from repro.parallel.worker import WorkerSettings

        pool.ensure_workers()
        run = pool.open_run(toggler, WorkerSettings())
        with pytest.raises(RuntimeError, match="still active"):
            pool.begin_run(toggler, WorkerSettings())
        pool.close_run(run)

    def test_message_lease_is_exclusive(self, pool):
        owner, thief = object(), object()
        pool.acquire_messages(owner)
        pool.acquire_messages(owner)  # re-entrant for the same owner
        with pytest.raises(RuntimeError, match="consumed"):
            pool.acquire_messages(thief)
        pool.release_messages(thief)  # non-holder: no-op
        with pytest.raises(RuntimeError, match="consumed"):
            pool.acquire_messages(thief)
        pool.release_messages(owner)
        pool.acquire_messages(thief)
        pool.release_messages(thief)

    def test_assign_to_unopened_run_rejected(self, pool, toggler):
        from repro.parallel.worker import PropertyJob, WorkerSettings

        pool.ensure_workers()
        run = pool.open_run(toggler, WorkerSettings())
        with pytest.raises(RuntimeError, match="not open"):
            pool.assign(0, PropertyJob(name="never_q"), run_id=run + 1)
        pool.close_run(run)
