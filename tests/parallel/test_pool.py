"""Persistent WorkerPool semantics: reuse, isolation, crash replacement."""

from __future__ import annotations

import pytest

from repro.engines.result import PropStatus
from repro.parallel import WorkerPool, default_pool, shutdown_default_pool
from repro.progress import PoolAttached, WorkerStarted
from repro.session import ConfigError, Session


@pytest.fixture
def pool():
    with WorkerPool(workers=2) as p:
        yield p


class TestPoolReuse:
    def test_design_is_pickled_once_across_runs(self, pool, toggler):
        reports = [
            Session(toggler, strategy="parallel-ja", pool=pool).run()
            for _ in range(3)
        ]
        assert pool.stats["runs"] == 3
        assert pool.stats["design_pickles"] == 1
        assert pool.stats["workers_spawned"] == 2
        for report in reports:
            assert report.outcomes["never_r"].status is PropStatus.HOLDS
            assert report.outcomes["never_q"].status is PropStatus.FAILS
            assert report.stats["pool"] == "persistent"

    def test_runs_are_isolated(self, pool, toggler, counter4):
        """Verdicts and clause traffic never leak between runs."""
        first = Session(toggler, strategy="parallel-ja", pool=pool).run()
        second = Session(counter4, strategy="parallel-ja", pool=pool).run()
        third = Session(toggler, strategy="parallel-ja", pool=pool).run()
        assert set(first.outcomes) == {"never_r", "never_q"}
        assert set(second.outcomes) == {"P0", "P1"}
        assert set(third.outcomes) == set(first.outcomes)
        assert {n: o.status for n, o in third.outcomes.items()} == {
            n: o.status for n, o in first.outcomes.items()
        }
        # Two distinct designs were shipped; each pickled exactly once.
        assert pool.stats["design_pickles"] == 2
        assert pool.stats["designs_cached"] == 2

    def test_crashed_worker_is_replaced_before_next_run(self, pool, toggler):
        first = Session(toggler, strategy="parallel-ja", pool=pool).run()
        assert first.stats["worker_crashes"] == 0
        # Simulate an OOM kill between runs.
        victim = pool._slots[0].process
        victim.terminate()
        victim.join()
        events = []
        second = Session(
            toggler, strategy="parallel-ja", pool=pool, on_event=events.append
        ).run()
        assert pool.stats["workers_replaced"] == 1
        assert pool.stats["workers_spawned"] == 3
        # The replacement ran at full strength: complete, crash-free run.
        assert second.outcomes["never_r"].status is PropStatus.HOLDS
        assert second.outcomes["never_q"].status is PropStatus.FAILS
        assert second.stats["worker_crashes"] == 0
        restarted = [e for e in events if isinstance(e, WorkerStarted)]
        assert [e.worker for e in restarted] == [0]

    def test_pool_attached_event_reports_reuse(self, pool, toggler):
        events = []
        Session(toggler, strategy="parallel-ja", pool=pool,
                on_event=events.append).run()
        first = next(e for e in events if isinstance(e, PoolAttached))
        assert first.workers == 2
        assert first.persistent is True
        assert first.runs == 0
        events.clear()
        Session(toggler, strategy="parallel-ja", pool=pool,
                on_event=events.append).run()
        second = next(e for e in events if isinstance(e, PoolAttached))
        assert second.runs == 1
        # Warm pool: no new workers were spawned on the second run.
        assert not any(isinstance(e, WorkerStarted) for e in events)

    def test_ephemeral_runs_do_not_share_state(self, toggler):
        first = Session(toggler, strategy="parallel-ja", workers=2).run()
        second = Session(toggler, strategy="parallel-ja", workers=2).run()
        assert first.stats["pool"] == "ephemeral"
        assert first.stats["design_pickles"] == 1
        assert second.stats["design_pickles"] == 1  # a fresh pool each time


class TestPoolLifecycle:
    def test_begin_run_rejects_concurrent_runs(self, pool, toggler):
        pool.ensure_workers()
        from repro.parallel.worker import WorkerSettings

        pool.begin_run(toggler, WorkerSettings())
        try:
            with pytest.raises(RuntimeError, match="still active"):
                pool.begin_run(toggler, WorkerSettings())
        finally:
            pool.end_run()

    def test_shutdown_is_idempotent_and_closes(self, toggler):
        pool = WorkerPool(workers=1)
        Session(toggler, strategy="parallel-ja", pool=pool).run()
        pool.shutdown()
        pool.shutdown()
        assert pool.closed
        with pytest.raises(RuntimeError):
            pool.ensure_workers()

    def test_config_rejects_closed_pool(self, toggler):
        pool = WorkerPool(workers=1)
        pool.shutdown()
        with pytest.raises(ConfigError, match="shut down"):
            Session(toggler, strategy="parallel-ja", pool=pool)

    def test_config_rejects_non_pool(self, toggler):
        with pytest.raises(ConfigError, match="WorkerPool"):
            Session(toggler, strategy="parallel-ja", pool=object())

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=0)

    def test_default_pool_is_shared_and_rebuildable(self):
        shutdown_default_pool()
        try:
            first = default_pool(workers=1)
            assert default_pool() is first
            shutdown_default_pool()
            second = default_pool(workers=1)
            assert second is not first
            assert not second.closed
        finally:
            shutdown_default_pool()
