"""Parallel stress suite: 100+ properties through shards x workers.

Slow-marked end-to-end hardening of the persistent-pool + sharded-
exchange engine at a property count an order of magnitude above the
unit tests: a synthetic design of many independent latch groups (so
the structural clustering produces many real clusters) is pushed
through 4 exchange shards x 4 pool workers and checked for

* verdict parity with the sequential JA driver (exchange on), and
  verdict *and frame* parity with clause re-use disabled on both sides
  (where the proofs are bit-identical by construction);
* zero cross-shard clause deliveries, straight from the per-shard
  traffic stats the exchange records.

``REPRO_STRESS_SHARDS`` scales the shard count (CI's nightly job runs
the suite at 2); workers stay at 4.
"""

from __future__ import annotations

import os

import pytest

from repro.circuit.aig import AIG, aig_not
from repro.multiprop.ja import JAOptions, JAVerifier
from repro.parallel import ParallelOptions, WorkerPool, parallel_ja_verify
from repro.ts.system import TransitionSystem

SHARDS = int(os.environ.get("REPRO_STRESS_SHARDS", "4"))
WORKERS = 4
GROUPS = 35  # 3 properties each -> 105 properties


def many_group_design(groups: int = GROUPS) -> AIG:
    """``groups`` independent 3-latch blocks, 3 properties per block.

    Per block: ``x`` toggles every frame, ``y`` is stuck at 0, ``z``
    latches ``y`` (so it is stuck at 0 too).  The three properties have
    overlapping cones inside the block and disjoint cones across
    blocks, so the structural clustering yields one cluster per block —
    exactly the regime the sharded exchange is built for.  Every 7th
    block swaps one holding property for ``never x``, which fails at
    frame 1, so failures are spread across shards.
    """
    aig = AIG()
    for g in range(groups):
        x = aig.add_latch(f"x{g}", init=0)
        aig.set_next(x, aig_not(x))
        y = aig.add_latch(f"y{g}", init=0)
        aig.set_next(y, y)
        z = aig.add_latch(f"z{g}", init=0)
        aig.set_next(z, aig.or_(z, y))
        aig.add_property(f"g{g}_y0", aig_not(y))
        if g % 7 == 0:
            aig.add_property(f"g{g}_fail", aig_not(x))
        else:
            aig.add_property(f"g{g}_xy", aig_not(aig.and_(x, y)))
        aig.add_property(f"g{g}_z0", aig_not(z))
    return aig


@pytest.fixture(scope="module")
def stress_ts() -> TransitionSystem:
    return TransitionSystem(many_group_design())


def verdicts(report) -> dict:
    return {name: o.status for name, o in report.outcomes.items()}


def frames(report) -> dict:
    return {name: o.frames for name, o in report.outcomes.items()}


@pytest.mark.slow
class TestParallelStress:
    def test_sharded_run_matches_sequential_ja(self, stress_ts):
        assert len(stress_ts.properties) >= 100
        sequential = JAVerifier(stress_ts, JAOptions()).run()
        with WorkerPool(workers=WORKERS) as pool:
            parallel = parallel_ja_verify(
                stress_ts,
                ParallelOptions(pool=pool, exchange_shards=SHARDS),
            )
        assert verdicts(parallel) == verdicts(sequential)
        assert list(parallel.outcomes) == list(sequential.outcomes)
        assert parallel.stats["exchange_shards"] == SHARDS
        assert parallel.stats["worker_crashes"] == 0
        # Zero cross-shard clause deliveries: every shard only ever saw
        # traffic from its own member properties.
        per_shard = parallel.stats["exchange_per_shard"]
        assert len(per_shard) == SHARDS
        for stats in per_shard:
            members = set(stats["members"])
            assert set(stats["publishers"]) <= members
            assert set(stats["fetchers"]) <= members
        # The run's properties partition exactly across the shards.
        everyone = sorted(
            name for stats in per_shard for name in stats["members"]
        )
        assert everyone == sorted(o.name for o in parallel.outcomes.values())
        # The exchange actually carried clauses (the holding properties
        # export invariants), all within shards.
        assert parallel.stats["exchange_clauses"] > 0

    def test_no_reuse_run_matches_sequential_frames_exactly(self, stress_ts):
        """Without clause re-use the per-property proofs are identical
        computations in either driver: verdicts AND frame counts must
        match property-for-property."""
        sequential = JAVerifier(
            stress_ts, JAOptions(clause_reuse=False)
        ).run()
        with WorkerPool(workers=WORKERS) as pool:
            parallel = parallel_ja_verify(
                stress_ts,
                ParallelOptions(pool=pool, clause_reuse=False),
            )
        assert verdicts(parallel) == verdicts(sequential)
        assert frames(parallel) == frames(sequential)
        assert parallel.stats["exchange"] == 0
