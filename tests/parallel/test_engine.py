"""Unit tests for the process-parallel JA engine and its clause exchange."""

from __future__ import annotations

import pytest

from repro.engines.result import PropStatus
from repro.parallel import ParallelOptions, parallel_ja_verify, start_exchange
from repro.parallel.sharing import ClauseExchange
from repro.progress import (
    PropertyCancelled,
    PropertySolved,
    WorkerStarted,
)
from repro.session import Session
from repro.ts.system import TransitionSystem


class TestClauseExchange:
    """Server-side log semantics (tested in-process, no manager)."""

    def test_publish_fetch_roundtrip(self):
        exchange = ClauseExchange()
        assert exchange.publish([(1, 2), (-3,)]) == 2
        clauses, cursor = exchange.fetch(0)
        assert clauses == [(1, 2), (-3,)]
        assert cursor == 2

    def test_cursor_only_sees_new_clauses(self):
        exchange = ClauseExchange()
        exchange.publish([(1,)])
        _, cursor = exchange.fetch(0)
        exchange.publish([(2,), (1,)])  # (1,) is a duplicate
        fresh, cursor = exchange.fetch(cursor)
        assert fresh == [(2,)]
        assert exchange.size() == 2

    def test_duplicates_are_dropped(self):
        exchange = ClauseExchange()
        assert exchange.publish([(1, -2), (1, -2)]) == 1
        assert exchange.publish([(1, -2)]) == 0

    def test_clauses_normalized_by_variable(self):
        exchange = ClauseExchange()
        exchange.publish([(-2, 1)])
        assert exchange.fetch(0)[0] == [(1, -2)]

    def test_negative_cursor_rejected(self):
        with pytest.raises(ValueError):
            ClauseExchange().fetch(-1)

    def test_stats(self):
        exchange = ClauseExchange()
        exchange.publish([(1,)])
        exchange.publish([])
        assert exchange.stats() == {"clauses": 1, "publishes": 2}

    def test_manager_hosted_roundtrip(self):
        manager, proxy = start_exchange()
        try:
            proxy.publish([(1, 2)])
            clauses, cursor = proxy.fetch(0)
            assert clauses == [(1, 2)] and cursor == 1
        finally:
            manager.shutdown()


class TestEngine:
    def test_verdicts_and_stats(self, toggler):
        report = parallel_ja_verify(
            toggler, ParallelOptions(workers=2), design_name="toggler"
        )
        assert report.method == "parallel-ja"
        assert report.design == "toggler"
        assert report.outcomes["never_r"].status is PropStatus.HOLDS
        assert report.outcomes["never_q"].status is PropStatus.FAILS
        assert report.stats["mode"] == "process"
        assert report.stats["workers"] == 2
        assert report.stats["worker_crashes"] == 0

    def test_outcomes_follow_dispatch_order(self, counter4):
        options = ParallelOptions(workers=2, order=["P1", "P0"])
        report = parallel_ja_verify(counter4, options)
        assert list(report.outcomes) == ["P1", "P0"]

    def test_empty_property_list(self):
        from repro.circuit.aig import AIG

        aig = AIG()
        aig.add_latch("l", init=0)
        report = parallel_ja_verify(TransitionSystem(aig))
        assert report.outcomes == {}

    def test_unknown_order_name_rejected(self, toggler):
        with pytest.raises(KeyError):
            parallel_ja_verify(toggler, ParallelOptions(order=["nope"]))

    def test_invalid_worker_count_rejected(self, toggler):
        with pytest.raises(ValueError):
            parallel_ja_verify(toggler, ParallelOptions(workers=0))

    def test_worker_events_are_merged(self, toggler):
        events = []
        parallel_ja_verify(toggler, ParallelOptions(workers=2), emit=events.append)
        assert sum(isinstance(e, WorkerStarted) for e in events) == 2
        solved = [e for e in events if isinstance(e, PropertySolved)]
        assert {e.name for e in solved} == {"never_r", "never_q"}

    def test_exchange_off_shares_nothing(self, counter4):
        report = parallel_ja_verify(
            counter4, ParallelOptions(workers=2, exchange=False)
        )
        assert report.stats["exchange"] == 0
        assert report.stats["exchange_clauses"] == 0

    def test_clause_reuse_off_disables_exchange(self, counter4):
        report = parallel_ja_verify(
            counter4, ParallelOptions(workers=2, clause_reuse=False)
        )
        assert report.stats["exchange"] == 0


class TestEarlyCancellation:
    def test_stop_on_failure_cancels_the_queue(self, toggler):
        # One worker, failing property first: everything behind it in
        # the queue must be cancelled deterministically.
        events = []
        options = ParallelOptions(
            workers=1, stop_on_failure=True, order=["never_q", "never_r"]
        )
        report = parallel_ja_verify(toggler, options, emit=events.append)
        assert report.outcomes["never_q"].status is PropStatus.FAILS
        assert report.outcomes["never_r"].status is PropStatus.UNKNOWN
        assert report.stats["cancelled"] == 1
        cancelled = [e for e in events if isinstance(e, PropertyCancelled)]
        assert [e.name for e in cancelled] == ["never_r"]
        # The one-verdict-per-property invariant survives cancellation.
        solved = [e for e in events if isinstance(e, PropertySolved)]
        assert sorted(e.name for e in solved) == ["never_q", "never_r"]

    def test_zero_total_time_cancels_everything(self, toggler):
        report = parallel_ja_verify(
            toggler, ParallelOptions(workers=2, total_time=0.0)
        )
        assert all(
            o.status is PropStatus.UNKNOWN for o in report.outcomes.values()
        )
        assert report.stats["cancelled"] == len(toggler.properties)


class TestScheduleOnly:
    def test_matches_process_verdicts(self, toggler):
        simulated = parallel_ja_verify(
            toggler, ParallelOptions(schedule_only=True, workers=4)
        )
        real = parallel_ja_verify(toggler, ParallelOptions(workers=2))
        assert {n: o.status for n, o in simulated.outcomes.items()} == {
            n: o.status for n, o in real.outcomes.items()
        }

    def test_projection_stats(self, counter4):
        report = parallel_ja_verify(
            counter4, ParallelOptions(schedule_only=True, workers=2)
        )
        assert report.stats["mode"] == "schedule_only"
        assert report.stats["simulated_speedup"] >= 1.0
        assert (
            report.stats["simulated_makespan"]
            <= report.stats["sequential_time"] + 1e-9
        )

    def test_emits_one_verdict_per_property(self, counter4):
        events = []
        parallel_ja_verify(
            counter4,
            ParallelOptions(schedule_only=True),
            emit=events.append,
        )
        solved = [e for e in events if isinstance(e, PropertySolved)]
        assert len(solved) == len(counter4.properties)


class TestSessionIntegration:
    def test_session_stream_merges_worker_events(self, toggler):
        session = Session(toggler, strategy="parallel-ja", workers=2)
        kinds = [event.kind for event in session.stream()]
        assert kinds[0] == "run-started"
        assert kinds[-1] == "run-finished"
        assert kinds.count("worker-started") == 2
        assert kinds.count("property-solved") == len(toggler.properties)
        assert session.report is not None

    def test_workers_validated_by_config(self, toggler):
        from repro.session import ConfigError

        with pytest.raises(ConfigError):
            Session(toggler, strategy="parallel-ja", workers=0)
