"""Crash re-dispatch and size-aware dispatch of the parallel engine.

The crash tests replace the pool worker entry point with wrappers that
``os._exit`` at controlled points (fork start method only: the patched
function must be inherited by the child).  A file marker gates the
surviving worker so the crash always wins the race for the first job,
making the scenarios deterministic.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.engines.result import PropStatus
from repro.gen.counter import buggy_counter
from repro.parallel import ParallelOptions, parallel_ja_verify
from repro.parallel import engine as engine_mod
from repro.parallel import worker as worker_mod
from repro.parallel.worker import pool_worker_main  # real entry, pre-patch
from repro.progress import PropertyRequeued
from repro.ts.system import TransitionSystem

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="crash injection requires the fork start method",
)


def _crash_on_first_job(marker: str):
    """Worker 0 absorbs its setup, takes its first job, then dies.

    The parent assigned the job, so the crash loses work it must
    recover; the sibling workers wait for the marker so worker 0 is
    guaranteed to be the first to ack — and therefore the first to be
    fed a job.
    """

    def entry(worker_id, ctrl_queue, out_queue, cancel_epoch, stop_event):
        import time

        if worker_id == 0:
            while True:
                message = ctrl_queue.get(timeout=10)
                if message[0] == "run":
                    out_queue.put(("ready", message[1], worker_id))
                elif message[0] == "job":
                    # Flush the feeder thread so the ready ack reached
                    # the parent before this process dies.
                    out_queue.close()
                    out_queue.join_thread()
                    with open(marker, "w"):
                        pass
                    os._exit(1)
        while not os.path.exists(marker):
            time.sleep(0.01)
        pool_worker_main(
            worker_id, ctrl_queue, out_queue, cancel_epoch, stop_event
        )

    return entry


def _crash_before_ready(marker: str):
    """Worker 0 dies before even acknowledging the run setup."""

    def entry(worker_id, ctrl_queue, out_queue, cancel_epoch, stop_event):
        import time

        if worker_id == 0:
            ctrl_queue.get(timeout=10)  # swallow the setup, say nothing
            with open(marker, "w"):
                pass
            os._exit(1)
        while not os.path.exists(marker):
            time.sleep(0.01)
        pool_worker_main(
            worker_id, ctrl_queue, out_queue, cancel_epoch, stop_event
        )

    return entry


@pytest.mark.slow
@needs_fork
class TestCrashRedispatch:
    def test_assigned_job_is_retried_on_a_survivor(
        self, toggler, tmp_path, monkeypatch
    ):
        marker = str(tmp_path / "crashed")
        monkeypatch.setattr(
            worker_mod, "pool_worker_main", _crash_on_first_job(marker)
        )
        events = []
        report = parallel_ja_verify(
            toggler,
            ParallelOptions(workers=2, start_method="fork"),
            emit=events.append,
        )
        # The crashed worker's job was recovered: no UNKNOWN verdicts.
        assert report.outcomes["never_r"].status is PropStatus.HOLDS
        assert report.outcomes["never_q"].status is PropStatus.FAILS
        assert report.stats["worker_crashes"] == 1
        assert report.stats["redispatched"] == 1
        requeued = [e for e in events if isinstance(e, PropertyRequeued)]
        assert len(requeued) == 1
        # Assignment is parent-side, so attribution is exact.
        assert requeued[0].worker == 0

    def test_worker_dead_before_ack_does_not_stall_the_run(
        self, toggler, tmp_path, monkeypatch
    ):
        marker = str(tmp_path / "crashed")
        monkeypatch.setattr(
            worker_mod, "pool_worker_main", _crash_before_ready(marker)
        )
        report = parallel_ja_verify(
            toggler, ParallelOptions(workers=2, start_method="fork")
        )
        # The dead worker never held a job, so nothing was lost: the
        # survivor works through the whole backlog and the run
        # terminates with full verdicts instead of hanging.
        assert report.outcomes["never_r"].status is PropStatus.HOLDS
        assert report.outcomes["never_q"].status is PropStatus.FAILS
        assert report.stats["worker_crashes"] == 0
        assert report.stats["redispatched"] == 0

    def test_all_workers_dead_degrades_to_unknown(
        self, toggler, tmp_path, monkeypatch
    ):
        def die_immediately(worker_id, ctrl_queue, out_queue, cancel_epoch,
                            stop_event):
            os._exit(1)

        monkeypatch.setattr(worker_mod, "pool_worker_main", die_immediately)
        report = parallel_ja_verify(
            toggler, ParallelOptions(workers=2, start_method="fork")
        )
        assert all(
            o.status is PropStatus.UNKNOWN for o in report.outcomes.values()
        )
        assert report.stats["cancelled"] == len(toggler.properties)


class TestSizeAwareDispatch:
    def test_orders_by_descending_cone_size(self):
        ts = TransitionSystem(buggy_counter(bits=4))
        order = [p.name for p in ts.properties]
        dispatch = engine_mod._cone_descending(ts, order)
        def cone(name):
            _, latches = ts.aig.cone_of_influence([ts.prop_by_name[name].lit])
            return len(latches)
        sizes = [cone(n) for n in dispatch]
        assert sizes == sorted(sizes, reverse=True)
        assert sorted(dispatch) == sorted(order)

    def test_ties_keep_the_requested_order(self, toggler):
        order = [p.name for p in toggler.properties]
        assert engine_mod._cone_descending(toggler, order) == order

    def test_report_keeps_property_order(self):
        ts = TransitionSystem(buggy_counter(bits=4))
        report = parallel_ja_verify(ts, ParallelOptions(workers=1))
        assert list(report.outcomes) == [p.name for p in ts.properties]
        assert report.stats["dispatch"] == "cone-desc"

    def test_explicit_order_wins_over_size_dispatch(self, toggler):
        report = parallel_ja_verify(
            toggler,
            ParallelOptions(workers=1, order=["never_q", "never_r"]),
        )
        assert list(report.outcomes) == ["never_q", "never_r"]
        assert report.stats["dispatch"] == "fifo"

    def test_size_dispatch_can_be_disabled(self, toggler):
        report = parallel_ja_verify(
            toggler, ParallelOptions(workers=1, size_dispatch=False)
        )
        assert report.stats["dispatch"] == "fifo"
