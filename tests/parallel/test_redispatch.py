"""Crash re-dispatch and size-aware dispatch of the parallel engine.

The crash tests replace the worker entry point with wrappers that
``os._exit`` at controlled points (fork start method only: the patched
function must be inherited by the child).  A file marker gates the
surviving worker so the crash always wins the race for the first job,
making the scenarios deterministic.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.engines.result import PropStatus
from repro.gen.counter import buggy_counter
from repro.parallel import ParallelOptions, parallel_ja_verify
from repro.parallel import engine as engine_mod
from repro.parallel.worker import worker_main
from repro.progress import PropertyRequeued
from repro.ts.system import TransitionSystem

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="crash injection requires the fork start method",
)


def _crash_after_claim(marker: str):
    """Worker 0 claims its first job, then dies; others wait for that."""

    def entry(worker_id, ts, settings, task_queue, out_queue, cancel_event,
              exchange=None):
        import time

        if worker_id == 0:
            job = task_queue.get(timeout=10)
            out_queue.put(("claim", worker_id, job.name))
            # Flush the feeder thread so the claim actually reaches the
            # parent before this process dies.
            out_queue.close()
            out_queue.join_thread()
            with open(marker, "w"):
                pass
            os._exit(1)
        while not os.path.exists(marker):
            time.sleep(0.01)
        worker_main(worker_id, ts, settings, task_queue, out_queue,
                    cancel_event, exchange)

    return entry


def _crash_before_claim(marker: str):
    """Worker 0 swallows its first job without claiming it, then dies."""

    def entry(worker_id, ts, settings, task_queue, out_queue, cancel_event,
              exchange=None):
        import time

        if worker_id == 0:
            task_queue.get(timeout=10)
            with open(marker, "w"):
                pass
            os._exit(1)
        while not os.path.exists(marker):
            time.sleep(0.01)
        worker_main(worker_id, ts, settings, task_queue, out_queue,
                    cancel_event, exchange)

    return entry


@pytest.mark.slow
@needs_fork
class TestCrashRedispatch:
    def test_claimed_job_is_retried_on_a_survivor(
        self, toggler, tmp_path, monkeypatch
    ):
        marker = str(tmp_path / "crashed")
        monkeypatch.setattr(
            engine_mod, "worker_main", _crash_after_claim(marker)
        )
        events = []
        report = parallel_ja_verify(
            toggler,
            ParallelOptions(workers=2, start_method="fork"),
            emit=events.append,
        )
        # The crashed worker's job was recovered: no UNKNOWN verdicts.
        assert report.outcomes["never_r"].status is PropStatus.HOLDS
        assert report.outcomes["never_q"].status is PropStatus.FAILS
        assert report.stats["worker_crashes"] == 1
        assert report.stats["redispatched"] == 1
        requeued = [e for e in events if isinstance(e, PropertyRequeued)]
        assert len(requeued) == 1
        # Attributed to worker 0 via its claim; None only in the rare
        # case the OS reaped the claim message with the process.
        assert requeued[0].worker in (0, None)

    def test_job_swallowed_before_claim_is_recovered(
        self, toggler, tmp_path, monkeypatch
    ):
        marker = str(tmp_path / "crashed")
        monkeypatch.setattr(
            engine_mod, "worker_main", _crash_before_claim(marker)
        )
        report = parallel_ja_verify(
            toggler, ParallelOptions(workers=2, start_method="fork")
        )
        # The stall detector re-enqueues the swallowed job; the run
        # terminates with full verdicts instead of hanging.
        assert report.outcomes["never_r"].status is PropStatus.HOLDS
        assert report.outcomes["never_q"].status is PropStatus.FAILS
        assert report.stats["redispatched"] >= 1


class TestSizeAwareDispatch:
    def test_orders_by_descending_cone_size(self):
        ts = TransitionSystem(buggy_counter(bits=4))
        order = [p.name for p in ts.properties]
        dispatch = engine_mod._cone_descending(ts, order)
        def cone(name):
            _, latches = ts.aig.cone_of_influence([ts.prop_by_name[name].lit])
            return len(latches)
        sizes = [cone(n) for n in dispatch]
        assert sizes == sorted(sizes, reverse=True)
        assert sorted(dispatch) == sorted(order)

    def test_ties_keep_the_requested_order(self, toggler):
        order = [p.name for p in toggler.properties]
        assert engine_mod._cone_descending(toggler, order) == order

    def test_report_keeps_property_order(self):
        ts = TransitionSystem(buggy_counter(bits=4))
        report = parallel_ja_verify(ts, ParallelOptions(workers=1))
        assert list(report.outcomes) == [p.name for p in ts.properties]
        assert report.stats["dispatch"] == "cone-desc"

    def test_explicit_order_wins_over_size_dispatch(self, toggler):
        report = parallel_ja_verify(
            toggler,
            ParallelOptions(workers=1, order=["never_q", "never_r"]),
        )
        assert list(report.outcomes) == ["never_q", "never_r"]
        assert report.stats["dispatch"] == "fifo"

    def test_size_dispatch_can_be_disabled(self, toggler):
        report = parallel_ja_verify(
            toggler, ParallelOptions(workers=1, size_dispatch=False)
        )
        assert report.stats["dispatch"] == "fifo"
