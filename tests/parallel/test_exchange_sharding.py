"""Sharded clause-exchange semantics: routing isolation, stats, mapping.

The Hypothesis property drives *arbitrary* cluster partitions through
the same cluster->shard placement the engine uses and simulates clause
traffic in-process (raw :class:`ExchangeShard` objects, no manager):
every clause a property observes must originate in its own cluster,
and the per-shard stats must sum to the aggregate — the two invariants
the 10k-property scaling story rests on.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gen.counter import buggy_counter
from repro.parallel.exchange import (
    AUTO_SHARD_CAP,
    ExchangeShard,
    ShardedExchange,
    ShardMap,
    build_shard_map,
    shard_clusters,
    start_sharded_exchange,
)
from repro.ts.system import TransitionSystem


def in_process_exchange(shard_map: ShardMap) -> ShardedExchange:
    shards = [
        ExchangeShard(i, shard_map.members(i))
        for i in range(shard_map.num_shards)
    ]
    return ShardedExchange(shard_map, shards)


# ----------------------------------------------------------------------
# Hypothesis: routing isolation under arbitrary cluster assignments
# ----------------------------------------------------------------------
@st.composite
def cluster_partitions(draw):
    """A random partition of p0..pN into clusters, plus a shard count."""
    n_props = draw(st.integers(min_value=1, max_value=24))
    labels = draw(
        st.lists(
            st.integers(min_value=0, max_value=7),
            min_size=n_props,
            max_size=n_props,
        )
    )
    clusters: dict = {}
    for i, label in enumerate(labels):
        clusters.setdefault(label, []).append(f"p{i}")
    num_shards = draw(st.integers(min_value=1, max_value=6))
    return list(clusters.values()), num_shards


@settings(max_examples=60, deadline=None)
@given(
    partition=cluster_partitions(),
    traffic=st.lists(
        st.tuples(st.integers(min_value=0, max_value=23), st.booleans()),
        max_size=80,
    ),
)
def test_clauses_never_cross_cluster_boundaries(partition, traffic):
    """Every observed clause originates in the observer's own cluster,
    and shard stats sum consistently, for arbitrary assignments."""
    clusters, num_shards = partition
    shard_map = shard_clusters(clusters, num_shards)
    names = sorted(
        (name for cluster in clusters for name in cluster),
        key=lambda n: int(n[1:]),
    )
    cluster_of = {
        name: i
        for i, cluster in enumerate(clusters)
        for name in cluster
    }
    exchange = in_process_exchange(shard_map)
    cursors: dict = {name: {} for name in names}
    published = set()
    # Interleave publishes and fetches; clause (i+1,) encodes its origin.
    for index, is_publish in traffic:
        name = names[index % len(names)]
        if is_publish:
            exchange.publish(name, [(names.index(name) + 1,)])
            published.add(names.index(name) + 1)
        else:
            for clause in exchange.fetch_fresh(name, cursors[name]):
                origin = names[clause[0] - 1]
                # The shard is the routing unit: a clause never leaves
                # its shard...
                assert shard_map.shard_of(origin) == shard_map.shard_of(name)
                # ...and with one shard per cluster (the ``"auto"``
                # regime), that *is* cluster isolation.
                if num_shards >= len(clusters):
                    assert cluster_of[origin] == cluster_of[name], (
                        f"{name} observed a clause from {origin}, "
                        f"a different cluster"
                    )
    # Whole clusters share a shard: a property's shard contains its
    # entire cluster.
    for cluster in clusters:
        assert len({shard_map.shard_of(n) for n in cluster}) == 1
    # Stats sum consistently across shards.
    stats = exchange.stats()
    assert stats["clauses"] == sum(s["clauses"] for s in stats["shards"])
    assert stats["clauses"] == len(published)
    assert stats["publishes"] == sum(s["publishes"] for s in stats["shards"])
    assert stats["fetches"] == sum(s["fetches"] for s in stats["shards"])
    assert exchange.routing_violations() == 0


# ----------------------------------------------------------------------
# Deterministic unit coverage
# ----------------------------------------------------------------------
class TestShardMap:
    def test_members_partition_the_names(self):
        shard_map = shard_clusters([["a", "b"], ["c"], ["d", "e", "f"]], 2)
        everyone = [
            n for s in range(shard_map.num_shards) for n in shard_map.members(s)
        ]
        assert sorted(everyone) == ["a", "b", "c", "d", "e", "f"]

    def test_lpt_balancing_is_deterministic(self):
        clusters = [["a"], ["b", "c", "d"], ["e", "f"]]
        first = shard_clusters(clusters, 2)
        second = shard_clusters(clusters, 2)
        assert first.members(0) == second.members(0)
        # Biggest cluster (3 names) went to shard 0, next (2) to shard 1,
        # the singleton to the lighter shard 1.
        assert first.members(0) == ("b", "c", "d")
        assert first.members(1) == ("a", "e", "f")

    def test_rejects_bad_shard_counts(self):
        with pytest.raises(ValueError):
            shard_clusters([["a"]], 0)
        with pytest.raises(ValueError):
            ShardMap({"a": 3}, 2)

    def test_build_shard_map_auto_caps(self):
        ts = TransitionSystem(buggy_counter(bits=4))
        names = [p.name for p in ts.properties]
        shard_map = build_shard_map(ts, names, "auto")
        assert 1 <= shard_map.num_shards <= AUTO_SHARD_CAP
        assert len(shard_map) == len(names)

    def test_build_shard_map_caps_explicit_count(self):
        ts = TransitionSystem(buggy_counter(bits=4))
        names = [p.name for p in ts.properties]
        shard_map = build_shard_map(ts, names, 16)
        assert shard_map.num_shards <= len(names)

    def test_build_shard_map_rejects_bad_spec(self):
        ts = TransitionSystem(buggy_counter(bits=4))
        names = [p.name for p in ts.properties]
        with pytest.raises(ValueError):
            build_shard_map(ts, names, 0)
        with pytest.raises(ValueError):
            build_shard_map(ts, names, "many")


class TestExchangeShard:
    def test_cursor_protocol_matches_legacy_exchange(self):
        shard = ExchangeShard(0, ("p", "q"))
        assert shard.publish("p", [(1, 2), (-3,)]) == 2
        clauses, cursor = shard.fetch("q", 0)
        assert clauses == [(1, 2), (-3,)] and cursor == 2
        assert shard.publish("q", [(1, 2)]) == 0  # duplicate dropped
        fresh, cursor = shard.fetch("q", cursor)
        assert fresh == [] and cursor == 2

    def test_negative_cursor_rejected(self):
        with pytest.raises(ValueError):
            ExchangeShard().fetch("p", -1)

    def test_stats_track_traffic_and_clients(self):
        shard = ExchangeShard(3, ("p", "q"))
        shard.publish("p", [(1,)])
        shard.fetch("q", 0)
        stats = shard.stats()
        assert stats["shard"] == 3
        assert stats["clauses"] == 1
        assert stats["publishers"] == ["p"]
        assert stats["fetchers"] == ["q"]

    def test_manager_hosted_roundtrip(self):
        shard_map = shard_clusters([["p"], ["q"]], 2)
        managers, exchange = start_sharded_exchange(shard_map)
        try:
            exchange.publish("p", [(1, 2)])
            clauses, cursor = exchange.fetch("p", 0)
            assert clauses == [(1, 2)] and cursor == 1
            # q lives on the other shard and sees nothing.
            assert exchange.fetch("q", 0) == ([], 0)
            assert exchange.stats()["clauses"] == 1
            assert exchange.routing_violations() == 0
        finally:
            for manager in managers:
                manager.shutdown()

    def test_mismatched_handles_rejected(self):
        shard_map = shard_clusters([["p"], ["q"]], 2)
        with pytest.raises(ValueError):
            ShardedExchange(shard_map, [ExchangeShard(0)])


class TestWorkerSideIsolation:
    def test_one_worker_serving_two_shards_keeps_dbs_apart(self):
        """A single worker running jobs from different shards must not
        seed one shard's proof with the other shard's clauses — the
        exchange routes strictly, and the worker's local clause
        database has to match (one DB per shard per run)."""
        from repro.circuit.aig import AIG, aig_not
        from repro.parallel import ParallelOptions, parallel_ja_verify
        from repro.progress import ClauseImport

        aig = AIG()
        r = aig.add_latch("r", init=0)
        aig.set_next(r, r)
        s = aig.add_latch("s", init=0)
        aig.set_next(s, s)
        aig.add_property("never_r", aig_not(r))  # holds, exports clauses
        aig.add_property("never_s", aig_not(s))  # disjoint cone: own cluster
        ts = TransitionSystem(aig)
        events = []
        report = parallel_ja_verify(
            ts,
            ParallelOptions(
                workers=1,
                exchange_shards=2,
                order=["never_r", "never_s"],
            ),
            emit=events.append,
        )
        assert report.stats["exchange_shards"] == 2
        assert all(o.status.value == "holds" for o in report.outcomes.values())
        # never_r's exported invariant lives in the other shard; had the
        # worker shared one DB across shards, never_s's proof would have
        # imported it and emitted a ClauseImport.
        imports = [e for e in events if isinstance(e, ClauseImport)]
        assert not [e for e in imports if e.name == "never_s"]


class TestBatchedFetchReplies:
    """Fetch replies travel as one packed buffer per cursor gap."""

    def test_pack_unpack_roundtrip(self):
        from repro.parallel.exchange import pack_clauses, unpack_clauses

        clauses = [(1, -2, 3), (-4,), (5, 6)]
        assert unpack_clauses(pack_clauses(clauses)) == clauses
        assert unpack_clauses(pack_clauses([])) == []
        # int64 range survives (activation literals can run high).
        wide = [(2**40, -(2**40) - 1)]
        assert unpack_clauses(pack_clauses(wide)) == wide

    def test_fetch_batch_is_one_blob_per_gap(self):
        shard = ExchangeShard(0, ("p",))
        shard.publish("p", [(1, 2), (-3,), (4, 5, 6)])
        blob, cursor = shard.fetch_batch("p", 0)
        assert isinstance(blob, bytes)
        assert cursor == 3
        from repro.parallel.exchange import unpack_clauses

        assert unpack_clauses(blob) == [(1, 2), (-3,), (4, 5, 6)]
        # An empty gap is an empty blob — and not a counted batch.
        empty, cursor = shard.fetch_batch("p", cursor)
        assert empty == b"" and cursor == 3

    def test_fetch_batches_stat_counts_nonempty_replies(self):
        shard = ExchangeShard(0, ("p", "q"))
        shard.fetch("q", 0)  # empty gap: a fetch, not a batch
        shard.publish("p", [(1,)])
        shard.fetch("q", 0)  # one clause: one batched reply
        shard.fetch("q", 1)  # caught up again
        stats = shard.stats()
        assert stats["fetches"] == 3
        assert stats["fetch_batches"] == 1

    def test_sharded_stats_aggregate_fetch_batches(self):
        shard_map = shard_clusters([["p"], ["q"]], 2)
        exchange = in_process_exchange(shard_map)
        exchange.publish("p", [(1,)])
        exchange.publish("q", [(2,)])
        cursors: dict = {}
        exchange.fetch_fresh("p", cursors)
        exchange.fetch_fresh("q", cursors)
        stats = exchange.stats()
        assert stats["fetch_batches"] == 2
        assert stats["fetch_batches"] == sum(
            s["fetch_batches"] for s in stats["shards"]
        )

    def test_engine_reports_fetch_batches_per_shard(self):
        from repro.parallel import ParallelOptions, parallel_ja_verify

        ts = TransitionSystem(buggy_counter(bits=4))
        report = parallel_ja_verify(ts, ParallelOptions(workers=2))
        for shard_stats in report.stats["exchange_per_shard"]:
            assert "fetch_batches" in shard_stats
