"""Tests for the transition-system layer: cubes, clauses, encodings."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.aig import AIG, aig_not
from repro.sat import Solver, Status
from repro.ts.system import (
    TransitionSystem,
    cube_subsumes,
    negate_cube,
    normalize_cube,
)


class TestCubeAlgebra:
    def test_normalize_sorts_by_var(self):
        assert normalize_cube([3, -1, 2]) == (-1, 2, 3)

    def test_normalize_dedups(self):
        assert normalize_cube([2, 2, -1]) == (-1, 2)

    def test_normalize_rejects_contradiction(self):
        with pytest.raises(ValueError):
            normalize_cube([1, -1])

    def test_normalize_rejects_zero(self):
        with pytest.raises(ValueError):
            normalize_cube([0])

    def test_negate_cube_involution(self):
        cube = (-1, 2, 3)
        assert negate_cube(negate_cube(cube)) == cube

    def test_subsumption(self):
        assert cube_subsumes((1,), (1, 2))
        assert not cube_subsumes((1, 2), (1,))
        assert not cube_subsumes((-1,), (1, 2))

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=1, max_value=6).flatmap(
                lambda v: st.sampled_from([v, -v])
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_normalize_idempotent(self, lits):
        try:
            once = normalize_cube(lits)
        except ValueError:
            return
        assert normalize_cube(once) == once


def _two_latch_system(init0=0, init1=1):
    aig = AIG()
    a = aig.add_latch("a", init=init0)
    b = aig.add_latch("b", init=init1)
    aig.set_next(a, b)
    aig.set_next(b, a)
    aig.add_property("p", aig_not(aig.and_(a, b)))
    return TransitionSystem(aig)


class TestInitChecks:
    def test_init_pattern(self):
        ts = _two_latch_system()
        assert ts.init_pattern == [-1, 2]

    def test_cube_intersects_init(self):
        ts = _two_latch_system()
        assert ts.cube_intersects_init((-1, 2))  # exactly the init state
        assert ts.cube_intersects_init((2,))  # superset of init
        assert not ts.cube_intersects_init((1,))  # contradicts a=0

    def test_uninit_latch_is_wildcard(self):
        aig = AIG()
        a = aig.add_latch("a", init=None)
        aig.set_next(a, a)
        aig.add_property("p", aig_not(a))
        ts = TransitionSystem(aig)
        assert ts.cube_intersects_init((1,))
        assert ts.cube_intersects_init((-1,))

    def test_clause_holds_at_init(self):
        ts = _two_latch_system()
        assert ts.clause_holds_at_init((-1,))  # a=0 holds initially
        assert ts.clause_holds_at_init((-1, 2))
        assert not ts.clause_holds_at_init((1,))

    def test_state_cube_from_values(self):
        ts = _two_latch_system()
        assert ts.state_cube_from([True, False]) == (1, -2)


class TestEncodings:
    def test_step_encoding_transition(self):
        ts = _two_latch_system()
        solver = Solver()
        enc = ts.encode_step(solver)
        # a'=b: assuming a=0,b=1 forces a'=1,b'=0 (the swap).
        status = solver.solve([-enc.curr[0], enc.curr[1], -enc.next[0]])
        assert status == Status.UNSAT
        status = solver.solve([-enc.curr[0], enc.curr[1], enc.next[0], -enc.next[1]])
        assert status == Status.SAT

    def test_init_frame_pins_latches(self):
        ts = _two_latch_system()
        solver = Solver()
        enc = ts.encode_init_frame(solver)
        assert solver.solve([enc.curr[0]]) == Status.UNSAT
        assert solver.solve([enc.curr[1]]) == Status.SAT

    def test_prop_literal_semantics(self):
        ts = _two_latch_system()
        solver = Solver()
        enc = ts.encode_step(solver)
        plit = enc.prop_curr["p"]
        # p = not(a and b): a=1,b=1 forces p false.
        assert solver.solve([enc.curr[0], enc.curr[1], plit]) == Status.UNSAT
        assert solver.solve([enc.curr[0], -enc.curr[1], plit]) == Status.SAT

    def test_cube_lits_mapping(self):
        ts = _two_latch_system()
        solver = Solver()
        enc = ts.encode_step(solver)
        assert enc.cube_lits_curr((1, -2)) == [enc.curr[0], -enc.curr[1]]
        assert enc.cube_lits_next((-1,)) == [-enc.next[0]]

    def test_constraints_asserted_on_step(self):
        aig = AIG()
        x = aig.add_input("x")
        q = aig.add_latch("q", init=0)
        aig.set_next(q, x)
        aig.add_property("p", aig_not(q))
        aig.add_constraint(aig_not(x))  # inputs pinned low
        ts = TransitionSystem(aig)
        solver = Solver()
        enc = ts.encode_step(solver)
        assert solver.solve([enc.inputs[x]]) == Status.UNSAT

    def test_duplicate_property_names_rejected(self):
        aig = AIG()
        q = aig.add_latch("q", init=0)
        aig.set_next(q, q)
        aig.add_property("p", q)
        aig.add_property("p", aig_not(q))
        with pytest.raises(ValueError):
            TransitionSystem(aig)


class TestAggregates:
    def test_aggregate_lit(self):
        ts = _two_latch_system()
        assert ts.aggregate_property_lit() == ts.properties[0].lit

    def test_eth_excludes_etf(self):
        aig = AIG()
        q = aig.add_latch("q", init=0)
        aig.set_next(q, q)
        aig.add_property("good", aig_not(q))
        aig.add_property("bad", q, expected_to_fail=True)
        ts = TransitionSystem(aig)
        assert [p.name for p in ts.eth_properties()] == ["good"]
