"""Tests for the T^P projection machinery and explicit-state ground truth.

These validate the *theory* of the paper (Propositions 1-6) on concrete
small systems, independently of any SAT-based engine.
"""

from __future__ import annotations

import pytest

from repro.circuit.aig import AIG, aig_not
from repro.gen.counter import buggy_counter, fixed_counter
from repro.gen.random_designs import random_design
from repro.ts.projection import (
    ProjectedReachability,
    assumption_lits,
    assumption_names,
)
from repro.ts.system import TransitionSystem


class TestAssumptionNames:
    def test_excludes_target(self):
        ts = TransitionSystem(buggy_counter(3))
        assert assumption_names(ts, "P0") == ["P1"]
        assert assumption_names(ts, "P1") == ["P0"]

    def test_excludes_etf(self):
        aig = AIG()
        q = aig.add_latch("q", init=0)
        aig.set_next(q, q)
        aig.add_property("a", aig_not(q))
        aig.add_property("b", aig_not(q))
        aig.add_property("etf", q, expected_to_fail=True)
        ts = TransitionSystem(aig)
        assert assumption_names(ts, "a") == ["b"]
        # Even when checking the ETF property, only ETH ones are assumed.
        assert assumption_names(ts, "etf") == ["a", "b"]

    def test_extra_excluded(self):
        ts = TransitionSystem(buggy_counter(3))
        assert assumption_names(ts, "P0", extra_excluded=["P1"]) == []

    def test_unknown_property(self):
        ts = TransitionSystem(buggy_counter(3))
        with pytest.raises(KeyError):
            assumption_names(ts, "nope")

    def test_assumption_lits(self):
        ts = TransitionSystem(buggy_counter(3))
        assert assumption_lits(ts, ["P1"]) == [ts.prop_by_name["P1"].lit]


class TestExample1GroundTruth:
    """The paper's Example 1, checked by explicit enumeration."""

    def setup_method(self):
        self.ts = TransitionSystem(buggy_counter(4))
        self.gt = ProjectedReachability(self.ts)

    def test_both_fail_globally(self):
        assert self.gt.fails_globally("P0")
        assert self.gt.fails_globally("P1")

    def test_only_p0_fails_locally(self):
        assert self.gt.fails_locally("P0")
        assert not self.gt.fails_locally("P1")

    def test_debugging_set_is_p0(self):
        assert self.gt.debugging_set() == ["P0"]

    def test_global_cex_depths(self):
        # P0 fails immediately; P1's shortest CEX passes rval+1 increments.
        assert self.gt.min_cex_depth("P0", ()) == 1
        assert self.gt.min_cex_depth("P1", ()) == 8 + 2  # rval=8 at 4 bits

    def test_fixed_counter_p1_holds(self):
        gt = ProjectedReachability(TransitionSystem(fixed_counter(4)))
        assert not gt.fails_globally("P1")
        assert gt.debugging_set() == ["P0"]


class TestPropositions:
    """Empirical checks of the paper's propositions on random designs."""

    def test_prop2a_global_holds_implies_local_holds(self):
        # If Q holds w.r.t. T it holds w.r.t. T^P.
        for seed in range(40):
            ts = TransitionSystem(random_design(seed))
            gt = ProjectedReachability(ts)
            for p in ts.properties:
                if not gt.fails_globally(p.name):
                    assert not gt.fails_locally(p.name), (seed, p.name)

    def test_prop5_all_local_iff_all_global(self):
        # P holds iff every Pi holds w.r.t. T^P.
        for seed in range(40):
            ts = TransitionSystem(random_design(seed))
            gt = ProjectedReachability(ts)
            any_global_fail = any(gt.fails_globally(p.name) for p in ts.properties)
            any_local_fail = any(gt.fails_locally(p.name) for p in ts.properties)
            assert any_global_fail == any_local_fail, seed

    def test_monotone_assumptions_shrink_reachability(self):
        # More assumptions => fewer reachable states (T^P cuts transitions).
        for seed in range(20):
            ts = TransitionSystem(random_design(seed))
            gt = ProjectedReachability(ts)
            names = [p.name for p in ts.properties]
            full = gt.reachable_states(())
            for k in range(1, len(names) + 1):
                constrained = gt.reachable_states(names[:k])
                assert constrained <= full
                full = constrained

    def test_local_cex_not_longer_needed(self):
        # A local CEX (when one exists) is never *shorter* than forbidden:
        # its depth is >= 1 and <= the global CEX depth bound is NOT
        # implied; but a locally failing property must also fail globally.
        for seed in range(30):
            ts = TransitionSystem(random_design(seed))
            gt = ProjectedReachability(ts)
            for p in ts.properties:
                if gt.fails_locally(p.name):
                    assert gt.fails_globally(p.name), (seed, p.name)


class TestSimultaneousFailure:
    """Two properties that only fail together must BOTH fail locally.

    This is the corner case that motivates leaving the bad-state query
    unconstrained (see repro.engines.ic3.core): if the final state were
    required to satisfy the other properties, neither failure would be
    found and Proposition 5 would break.
    """

    @staticmethod
    def _design():
        aig = AIG()
        x = aig.add_input("x")
        q = aig.add_latch("q", init=0)
        aig.set_next(q, x)
        # Both properties are the same predicate: they fail simultaneously.
        aig.add_property("A", aig_not(q))
        aig.add_property("B", aig_not(q))
        return TransitionSystem(aig)

    def test_both_fail_locally(self):
        gt = ProjectedReachability(self._design())
        assert gt.fails_locally("A")
        assert gt.fails_locally("B")
        assert gt.debugging_set() == ["A", "B"]


class TestRejectsLargeDesigns:
    def test_too_many_latches(self):
        aig = AIG()
        for i in range(30):
            q = aig.add_latch(f"q{i}", init=0)
            aig.set_next(q, q)
        aig.add_property("p", 1)
        with pytest.raises(ValueError):
            ProjectedReachability(TransitionSystem(aig), max_states=1 << 10)
