"""Tests for counterexample traces and their replay/validation."""

from __future__ import annotations

import pytest

from repro.circuit.aig import AIG, aig_not
from repro.gen.counter import buggy_counter
from repro.ts.system import TransitionSystem
from repro.ts.trace import Trace


def _toggler():
    aig = AIG()
    q = aig.add_latch("q", init=0)
    aig.set_next(q, aig_not(q))
    return aig, q


class TestValidate:
    def test_valid_trace(self):
        aig, q = _toggler()
        trace = Trace(inputs=[{}, {}])  # q=1 at frame 1
        assert trace.validate(aig, aig_not(q))

    def test_too_short_trace(self):
        aig, q = _toggler()
        trace = Trace(inputs=[{}])
        assert not trace.validate(aig, aig_not(q))

    def test_failure_must_be_at_last_frame(self):
        aig, q = _toggler()
        trace = Trace(inputs=[{}, {}, {}])  # fails at frame 1, not 2
        assert not trace.validate(aig, aig_not(q))
        assert trace.failure_frame(aig, aig_not(q)) == 1

    def test_input_driven_failure(self):
        aig = AIG()
        x = aig.add_input("x")
        q = aig.add_latch("q", init=0)
        aig.set_next(q, x)
        trace = Trace(inputs=[{x: True}, {x: False}])
        assert trace.validate(aig, aig_not(q))

    def test_uninitialized_latch_choice(self):
        aig = AIG()
        q = aig.add_latch("q", init=None)
        aig.set_next(q, q)
        bad = Trace(inputs=[{}], uninit={q: True})
        good = Trace(inputs=[{}], uninit={q: False})
        assert bad.validate(aig, aig_not(q))
        assert not good.validate(aig, aig_not(q))


class TestFirstFailures:
    def test_reports_earliest_and_all_names(self):
        aig = AIG()
        x = aig.add_input("x")
        q = aig.add_latch("q", init=0)
        aig.set_next(q, x)
        props = {"A": aig_not(q), "B": aig_not(q), "C": aig_not(x)}
        trace = Trace(inputs=[{x: True}, {x: False}])
        frame, failed = trace.first_failures(aig, props)
        assert frame == 0
        assert failed == ["C"]  # C fails at frame 0 (x=1); A/B only at 1

    def test_none_when_all_hold(self):
        aig, q = _toggler()
        trace = Trace(inputs=[{}])
        frame, failed = trace.first_failures(aig, {"p": aig_not(q)})
        assert frame is None and failed == []


class TestTruncate:
    def test_truncation(self):
        trace = Trace(inputs=[{1: True}, {1: False}, {}])
        shorter = trace.truncated(2)
        assert len(shorter) == 2
        assert shorter.inputs[0] == {1: True}

    def test_truncation_copies(self):
        trace = Trace(inputs=[{1: True}])
        shorter = trace.truncated(1)
        shorter.inputs[0][1] = False
        assert trace.inputs[0][1] is True

    def test_bad_length_rejected(self):
        trace = Trace(inputs=[{}])
        with pytest.raises(ValueError):
            trace.truncated(0)
        with pytest.raises(ValueError):
            trace.truncated(2)


class TestStates:
    def test_states_enumerates_latch_valuations(self):
        aig, q = _toggler()
        trace = Trace(inputs=[{}, {}, {}])
        states = trace.states(aig)
        assert [s[q] for s in states] == [False, True, False]

    def test_counter_trace_states(self):
        aig = buggy_counter(3)
        ts = TransitionSystem(aig)
        enable = aig.inputs[0]
        req = aig.inputs[1]
        # Drive enable for 5 frames with req low: val counts 0..4, rval=4.
        trace = Trace(inputs=[{enable: True, req: False}] * 6)
        assert trace.validate(aig, ts.prop_by_name["P1"].lit)
