"""Validation and ordering behaviour of :class:`VerificationConfig`."""

from __future__ import annotations

import pytest

from repro.session import ConfigError, VerificationConfig, resolve_order


class TestValidate:
    def test_default_config_is_valid(self):
        VerificationConfig().validate()

    @pytest.mark.parametrize(
        "field", ["total_time", "per_property_time", "per_property_conflicts", "total_conflicts"]
    )
    def test_negative_budgets_rejected(self, field):
        config = VerificationConfig(**{field: -1})
        with pytest.raises(ConfigError, match="non-negative"):
            config.validate()

    def test_zero_budget_allowed(self):
        VerificationConfig(total_time=0.0).validate()

    def test_empty_strategy_rejected(self):
        with pytest.raises(ConfigError, match="strategy"):
            VerificationConfig(strategy="").validate()

    def test_bad_max_frames_rejected(self):
        with pytest.raises(ConfigError, match="max_frames"):
            VerificationConfig(max_frames=0).validate()

    def test_bad_cluster_inner_rejected(self):
        with pytest.raises(ConfigError, match="cluster_inner"):
            VerificationConfig(cluster_inner="magic").validate()

    def test_bad_similarity_threshold_rejected(self):
        with pytest.raises(ConfigError, match="similarity_threshold"):
            VerificationConfig(similarity_threshold=1.5).validate()

    @pytest.mark.parametrize("order", ["zigzag", "shuffled:abc"])
    def test_bad_order_spec_rejected(self, order):
        with pytest.raises(ConfigError, match="unknown order"):
            VerificationConfig(order=order).validate()

    @pytest.mark.parametrize(
        "order", [None, "design", "cone", "shuffled:7", ["P1", "P0"]]
    )
    def test_good_order_specs_accepted(self, order):
        VerificationConfig(order=order).validate()

    def test_unknown_engine_override_rejected(self):
        with pytest.raises(ConfigError, match="engine override"):
            VerificationConfig(engine={"seed_clauses": []}).validate()

    @pytest.mark.parametrize("shards", [0, -2, "many", 1.5, True])
    def test_bad_exchange_shards_rejected(self, shards):
        with pytest.raises(ConfigError, match="exchange_shards"):
            VerificationConfig(exchange_shards=shards).validate()

    @pytest.mark.parametrize("shards", [1, 4, "auto"])
    def test_good_exchange_shards_accepted(self, shards):
        VerificationConfig(exchange_shards=shards).validate()

    def test_bad_pool_rejected(self):
        with pytest.raises(ConfigError, match="WorkerPool"):
            VerificationConfig(pool="not-a-pool").validate()

    def test_known_engine_overrides_accepted(self):
        VerificationConfig(
            engine={"generalize_passes": 1, "validate_invariant": False}
        ).validate()


class TestWithOverrides:
    def test_override_returns_copy(self):
        base = VerificationConfig()
        other = base.with_overrides(strategy="joint", total_time=5.0)
        assert other.strategy == "joint" and other.total_time == 5.0
        assert base.strategy == "ja" and base.total_time is None

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown config field"):
            VerificationConfig().with_overrides(frobnicate=True)


class TestResolveOrder:
    def test_none_passthrough(self, counter4):
        assert resolve_order(counter4, None) is None

    def test_named_orders(self, counter4):
        names = {p.name for p in counter4.properties}
        assert set(resolve_order(counter4, "design")) == names
        assert set(resolve_order(counter4, "cone")) == names
        assert set(resolve_order(counter4, "shuffled:3")) == names

    def test_explicit_list_passthrough(self, counter4):
        assert resolve_order(counter4, ["P1", "P0"]) == ["P1", "P0"]

    def test_explicit_list_with_unknown_name_rejected(self, counter4):
        with pytest.raises(ConfigError, match="unknown properties"):
            resolve_order(counter4, ["P0", "P9"])
