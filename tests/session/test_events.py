"""Event-stream contracts: bracketing, ordering, and channel parity."""

from __future__ import annotations

import pytest

from repro.engines.result import PropStatus
from repro.progress import (
    ClauseExport,
    ClauseImport,
    FrameAdvanced,
    ProgressEvent,
    PropertySolved,
    PropertyStarted,
    RunFinished,
    RunStarted,
)
from repro.session import Session


def collect(design, **config):
    events = []
    session = Session(design, on_event=events.append, **config)
    report = session.run()
    return events, report


class TestBracketing:
    @pytest.mark.parametrize("strategy", ["ja", "joint", "separate", "clustered"])
    def test_run_events_bracket_the_stream(self, counter4, strategy):
        events, report = collect(counter4, strategy=strategy)
        assert isinstance(events[0], RunStarted)
        assert isinstance(events[-1], RunFinished)
        assert events[0].strategy == strategy
        assert events[0].properties == ("P0", "P1")
        finished = events[-1]
        assert finished.num_false == len(report.false_props())
        assert finished.num_true == len(report.true_props())
        assert finished.num_unknown == len(report.unsolved())


class TestOrdering:
    def test_started_precedes_solved_per_property(self, counter4):
        events, _ = collect(counter4, strategy="ja")
        for name in ("P0", "P1"):
            started = next(
                i for i, e in enumerate(events)
                if isinstance(e, PropertyStarted) and e.name == name
            )
            solved = next(
                i for i, e in enumerate(events)
                if isinstance(e, PropertySolved) and e.name == name
            )
            assert started < solved

    def test_one_solved_event_per_property(self, counter4):
        events, report = collect(counter4, strategy="separate")
        solved = [e for e in events if isinstance(e, PropertySolved)]
        assert sorted(e.name for e in solved) == sorted(report.outcomes)
        by_name = {e.name: e for e in solved}
        for name, outcome in report.outcomes.items():
            assert by_name[name].status is outcome.status
            assert by_name[name].local == outcome.local

    def test_frames_advance_monotonically_per_property(self, counter4):
        events, _ = collect(counter4, strategy="ja")
        frames = {}
        for event in events:
            if isinstance(event, FrameAdvanced):
                assert event.frame > frames.get(event.name, 0)
                frames[event.name] = event.frame
        assert frames, "IC3 emitted no frame events"

    def test_clause_reuse_emits_export_then_import(self, toggler):
        # toggler: never_r holds (exports clauses), never_q is checked
        # after and imports them via the clauseDB.
        events, report = collect(toggler, strategy="separate")
        assert report.outcomes["never_r"].status is PropStatus.HOLDS
        kinds = [type(e) for e in events]
        assert ClauseExport in kinds
        export_at = kinds.index(ClauseExport)
        import_at = kinds.index(ClauseImport)
        assert export_at < import_at


class TestChannels:
    def test_stream_iterator_matches_callback_channel(self, counter4):
        callback_events, _ = collect(counter4, strategy="joint")
        session = Session(counter4, strategy="joint")
        streamed = list(session.stream())
        assert session.report is not None
        assert [type(e) for e in streamed] == [type(e) for e in callback_events]
        assert all(isinstance(e, ProgressEvent) for e in streamed)

    def test_stream_reraises_strategy_errors(self, counter4):
        from repro.session import register_strategy, unregister_strategy

        @register_strategy("exploding")
        class Exploding:
            """Always raises."""

            def run(self, ts, config, emit):
                raise RuntimeError("boom")

        try:
            session = Session(counter4, strategy="exploding")
            seen = []
            session.subscribe(seen.append)
            with pytest.raises(RuntimeError, match="boom"):
                list(session.stream())
            # RunFinished still brackets the stream on failure.
            assert isinstance(seen[-1], RunFinished)
            assert seen[-1].num_true == seen[-1].num_false == 0
        finally:
            unregister_strategy("exploding")

    def test_stream_abandoned_early_does_not_block(self, counter4):
        session = Session(counter4, strategy="ja")
        iterator = session.stream()
        first = next(iterator)
        assert isinstance(first, RunStarted)
        iterator.close()  # must detach promptly, not join the whole run

    def test_started_and_solved_paired_when_budget_skips(self, counter4):
        # total_time=0 exhausts before any property: every verdict is
        # UNKNOWN, yet each still gets a started/solved pair.
        for strategy in ("ja", "separate"):
            events, report = collect(counter4, strategy=strategy, total_time=0.0)
            assert {o.status for o in report.outcomes.values()} == {
                PropStatus.UNKNOWN
            }
            started = [e.name for e in events if isinstance(e, PropertyStarted)]
            solved = [e.name for e in events if isinstance(e, PropertySolved)]
            assert started == solved == ["P0", "P1"]

    def test_subscribe_and_unsubscribe(self, counter4):
        session = Session(counter4, strategy="ja")
        seen = []
        callback = session.subscribe(seen.append)
        session.unsubscribe(callback)
        session.run()
        assert seen == []

    def test_events_are_immutable(self, counter4):
        events, _ = collect(counter4, strategy="ja")
        with pytest.raises(Exception):
            events[0].strategy = "hacked"
