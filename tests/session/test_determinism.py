"""Determinism regression: every registered strategy replays exactly.

Two runs of the same strategy on the same seeded design must produce
identical verdicts, frame counts, and event sequences.  Wall-clock
fields are the one legitimate run-to-run difference, so events are
normalized by zeroing the timing fields before comparison; everything
else — kinds, names, statuses, assumption tuples, frame numbers, clause
counts, ordering — must match field for field.

``parallel-ja`` runs with ``workers=1``: a single worker drains the
task queue in dispatch order and the single message queue serializes
its stream, so the engine is deterministic by construction there (with
more workers, OS scheduling legitimately reorders completion).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.gen.random_designs import random_design
from repro.session import Session, VerificationConfig, available_strategies
from repro.ts.system import TransitionSystem

#: Event fields that measure wall-clock and may differ between runs.
TIMING_FIELDS = {"time_seconds", "elapsed", "total_time", "wall_s", "latency_s"}

#: Strategy-specific config so every strategy runs deterministically.
#: Both scheduler-backed strategies pin ``workers=1`` (see module
#: docstring); ``portfolio`` additionally races deterministically there
#: because a single seat runs attempts in admission order.
STRATEGY_OVERRIDES = {
    "parallel-ja": {"workers": 1},
    "portfolio": {"workers": 1},
}


def normalize(event):
    """The event with timing fields zeroed, as a comparable tuple."""
    values = []
    for field in dataclasses.fields(event):
        value = getattr(event, field.name)
        values.append(0.0 if field.name in TIMING_FIELDS else value)
    return (type(event).__name__, tuple(values))


def run_once(ts, strategy):
    events = []
    config = VerificationConfig(
        strategy=strategy, **STRATEGY_OVERRIDES.get(strategy, {})
    )
    report = Session(ts, config, on_event=events.append).run()
    verdicts = {name: o.status for name, o in report.outcomes.items()}
    frames = {name: o.frames for name, o in report.outcomes.items()}
    # Portfolio loser-cancel acknowledgements are wall-clock, not logic:
    # whether a cancelled attempt's ack lands before the run finalizes
    # depends on worker-process timing (its latency field is documented
    # as None while still in flight).  Exclude them like timing fields.
    return (
        verdicts,
        frames,
        [
            normalize(e)
            for e in events
            if type(e).__name__ != "AttemptCancelled"
        ],
    )


@pytest.fixture(scope="module")
def seeded_design():
    """A seeded random design with a mix of true and false properties."""
    return TransitionSystem(random_design(seed=20260727, n_props=3))


@pytest.mark.parametrize("strategy", sorted(available_strategies()))
def test_strategy_replays_identically(seeded_design, strategy):
    first = run_once(seeded_design, strategy)
    second = run_once(seeded_design, strategy)
    assert first[0] == second[0], "verdicts differ between runs"
    assert first[1] == second[1], "frame counts differ between runs"
    assert first[2] == second[2], "event sequences differ between runs"
    assert first[0], "the design must actually have properties"


@pytest.mark.parametrize("strategy", sorted(available_strategies()))
def test_event_stream_covers_every_property(seeded_design, strategy):
    verdicts, _, events = run_once(seeded_design, strategy)
    solved = [payload for name, payload in events if name == "PropertySolved"]
    # Exactly one verdict event per property, for every strategy.
    assert len(solved) == len(verdicts)


@pytest.mark.slow
def test_parallel_schedule_only_is_deterministic(seeded_design):
    runs = [
        run_once_config(seeded_design, workers=2, schedule_only=True)
        for _ in range(2)
    ]
    assert runs[0] == runs[1]


def run_once_config(ts, **overrides):
    events = []
    report = Session(
        ts, strategy="parallel-ja", on_event=events.append, **overrides
    ).run()
    return (
        {name: o.status for name, o in report.outcomes.items()},
        {name: o.frames for name, o in report.outcomes.items()},
        [normalize(e) for e in events],
    )
