"""Registry round-trips: registration, lookup, and Session dispatch."""

from __future__ import annotations

import pytest

from repro.engines.result import PropStatus
from repro.multiprop.report import MultiPropReport, PropOutcome
from repro.session import (
    Session,
    Strategy,
    UnknownStrategyError,
    available_strategies,
    get_strategy,
    register_strategy,
    unregister_strategy,
)

BUILTINS = {"ja", "joint", "separate", "clustered", "sweep-ja"}


@pytest.fixture
def dummy_strategy():
    """Register a trivial all-UNKNOWN strategy; unregister afterwards."""

    @register_strategy("dummy")
    class Dummy:
        """Marks every property unknown without doing any work."""

        def run(self, ts, config, emit):
            report = MultiPropReport(method="dummy", design=config.design_name)
            for prop in ts.properties:
                report.outcomes[prop.name] = PropOutcome(
                    name=prop.name, status=PropStatus.UNKNOWN, local=False
                )
            return report

    yield Dummy
    unregister_strategy("dummy")


class TestRegistry:
    def test_builtins_registered(self):
        assert BUILTINS <= set(available_strategies())

    def test_descriptions_are_docstring_first_lines(self):
        assert "local proofs" in available_strategies()["ja"]

    def test_builtin_satisfies_protocol(self):
        assert isinstance(get_strategy("ja"), Strategy)
        assert get_strategy("joint").name == "joint"

    def test_unknown_strategy_error_lists_available(self):
        with pytest.raises(UnknownStrategyError) as exc_info:
            get_strategy("nope")
        message = str(exc_info.value)
        assert "nope" in message and "ja" in message

    def test_duplicate_registration_rejected(self, dummy_strategy):
        with pytest.raises(ValueError, match="already registered"):
            register_strategy("dummy")(dummy_strategy)

    def test_replace_allows_reregistration(self, dummy_strategy):
        register_strategy("dummy", replace=True)(dummy_strategy)
        assert "dummy" in available_strategies()

    def test_unregister_is_idempotent(self):
        unregister_strategy("never-registered")


class TestSessionDispatch:
    def test_dummy_round_trip_through_session(self, counter4, dummy_strategy):
        report = Session(counter4, strategy="dummy").run()
        assert report.method == "dummy"
        assert {o.status for o in report.outcomes.values()} == {PropStatus.UNKNOWN}
        assert set(report.outcomes) == {p.name for p in counter4.properties}

    def test_unknown_strategy_fails_at_construction(self, counter4):
        with pytest.raises(UnknownStrategyError):
            Session(counter4, strategy="nope")

    def test_session_overrides_and_report_attr(self, counter4, dummy_strategy):
        session = Session(counter4, strategy="dummy", design_name="c4")
        assert session.report is None
        report = session.run()
        assert session.report is report
        assert report.design == "c4"

    def test_bad_design_type_rejected(self):
        from repro.session import ConfigError

        with pytest.raises(ConfigError, match="design must be"):
            Session(42)

    def test_unknown_property_in_order_fails_at_construction(self, counter4):
        from repro.session import ConfigError

        with pytest.raises(ConfigError, match="unknown properties"):
            Session(counter4, strategy="ja", order=["P0", "NOPE"])
