"""Session-vs-legacy parity: the facade must not change any verdict."""

from __future__ import annotations

import pytest

from repro.gen import FAILING_SPECS
from repro.multiprop import ja_verify, joint_verify, separate_verify
from repro.session import Session, VerificationConfig
from repro.ts.system import TransitionSystem


def verdicts(report):
    return {name: o.status for name, o in report.outcomes.items()}


@pytest.fixture(scope="module")
def failing_family():
    """A failing-family design (2 false / 3 true properties)."""
    return TransitionSystem(FAILING_SPECS["f175"].build())


class TestJAParity:
    def test_counter_matches_ja_verify(self, counter4):
        legacy = ja_verify(counter4)
        new = Session(counter4, strategy="ja").run()
        assert verdicts(new) == verdicts(legacy)
        assert new.debugging_set() == legacy.debugging_set() == ["P0"]

    def test_failing_family_matches_ja_verify(self, failing_family):
        legacy = ja_verify(failing_family)
        new = Session(failing_family, strategy="ja").run()
        assert verdicts(new) == verdicts(legacy)
        assert new.debugging_set() == legacy.debugging_set()
        assert new.false_props()  # the family really contains failures

    def test_config_options_are_forwarded(self, counter4):
        # An explicit reversed order plus no clause reuse must behave
        # exactly like the same JAOptions did.
        from repro.multiprop.ja import JAOptions

        legacy = ja_verify(
            counter4, JAOptions(clause_reuse=False, order=["P1", "P0"])
        )
        config = VerificationConfig(
            strategy="ja", clause_reuse=False, order=["P1", "P0"]
        )
        new = Session(counter4, config).run()
        assert verdicts(new) == verdicts(legacy)
        assert list(new.outcomes) == list(legacy.outcomes) == ["P1", "P0"]


class TestOtherStrategiesParity:
    def test_joint_matches_joint_verify(self, counter4, failing_family):
        for ts in (counter4, failing_family):
            assert verdicts(Session(ts, strategy="joint").run()) == verdicts(
                joint_verify(ts)
            )

    def test_separate_matches_separate_verify(self, counter4):
        assert verdicts(Session(counter4, strategy="separate").run()) == verdicts(
            separate_verify(counter4)
        )

    def test_clustered_runs_all_properties(self, failing_family):
        report = Session(failing_family, strategy="clustered").run()
        assert set(report.outcomes) == {
            p.name for p in failing_family.properties
        }

    def test_clustered_forwards_engine_overrides(self, counter4):
        # Same override path as the other strategies: the inner drivers
        # must receive config.engine (regression: it was dropped).
        report = Session(
            counter4,
            strategy="clustered",
            cluster_inner="ja",
            engine={"generalize_passes": 1},
        ).run()
        assert not report.unsolved()

    def test_engine_overrides_reach_ic3(self, counter4):
        # Disabling certificate validation is observable: the stats stay
        # identical but the run still solves everything, proving the
        # override took the documented IC3Options path.
        report = Session(
            counter4,
            strategy="ja",
            engine={"validate_invariant": False, "generalize_passes": 1},
        ).run()
        assert not report.unsolved()
