"""Tests for the BMC engine."""

from __future__ import annotations

import pytest

from repro.engines.bmc import bmc_check
from repro.engines.result import PropStatus, ResourceBudget
from repro.gen.counter import buggy_counter, fixed_counter
from repro.gen.random_designs import random_design
from repro.ts.projection import ProjectedReachability, assumption_names
from repro.ts.system import TransitionSystem


class TestCounterExample1:
    def test_p0_fails_at_depth_1(self, counter4):
        result = bmc_check(counter4, "P0", max_depth=4)
        assert result.status is PropStatus.FAILS
        assert result.frames == 1

    def test_p1_fails_at_exact_depth(self, counter4):
        # 4-bit counter, rval=8: P1 first fails when val=9, at frame 9.
        result = bmc_check(counter4, "P1", max_depth=16)
        assert result.status is PropStatus.FAILS
        assert result.frames == 10
        assert result.cex is not None
        assert result.cex.validate(counter4.aig, counter4.prop_by_name["P1"].lit)

    def test_depth_doubles_with_width(self):
        # Table I: the number of BMC time frames grows as 2^(bits-1).
        depths = {}
        for bits in (3, 4, 5):
            ts = TransitionSystem(buggy_counter(bits))
            result = bmc_check(ts, "P1", max_depth=40)
            assert result.fails
            depths[bits] = result.frames
        # depth = rval + 2 = 2^(bits-1) + 2
        assert depths == {3: 6, 4: 10, 5: 18}

    def test_unknown_when_bound_too_small(self, counter4):
        result = bmc_check(counter4, "P1", max_depth=5)
        assert result.status is PropStatus.UNKNOWN
        assert result.frames == 5

    def test_local_mode_p1_no_cex(self, counter4):
        # Under assumption P0 (req==1) the counter always resets: no CEX
        # at any depth (BMC can of course not *prove* P1).
        result = bmc_check(counter4, "P1", max_depth=14, assumed=["P0"])
        assert result.status is PropStatus.UNKNOWN

    def test_local_mode_p0_still_fails(self, counter4):
        result = bmc_check(counter4, "P0", max_depth=4, assumed=["P1"])
        assert result.status is PropStatus.FAILS
        assert result.frames == 1

    def test_fixed_counter_p1_never_fails(self):
        ts = TransitionSystem(fixed_counter(4))
        result = bmc_check(ts, "P1", max_depth=24)
        assert result.status is PropStatus.UNKNOWN


class TestGuards:
    def test_self_assumption_rejected(self, counter4):
        with pytest.raises(ValueError):
            bmc_check(counter4, "P1", assumed=["P1"])

    def test_unknown_property_rejected(self, counter4):
        with pytest.raises(KeyError):
            bmc_check(counter4, "nope")

    def test_budget_exhaustion(self, counter4):
        budget = ResourceBudget(conflict_limit=0, time_limit=None)
        budget.charge_conflicts(1)
        result = bmc_check(counter4, "P1", max_depth=16, budget=budget)
        assert result.status is PropStatus.UNKNOWN


class TestAgainstGroundTruth:
    def test_cex_depth_matches_bfs(self):
        for seed in range(25):
            ts = TransitionSystem(random_design(seed))
            gt = ProjectedReachability(ts)
            for prop in ts.properties:
                expected_depth = gt.min_cex_depth(prop.name, ())
                result = bmc_check(ts, prop.name, max_depth=20)
                if expected_depth is None:
                    assert result.status is PropStatus.UNKNOWN
                else:
                    assert result.fails, (seed, prop.name)
                    assert result.frames == expected_depth

    def test_local_cex_depth_matches_bfs(self):
        for seed in range(15):
            ts = TransitionSystem(random_design(seed))
            gt = ProjectedReachability(ts)
            for prop in ts.properties:
                assumed = assumption_names(ts, prop.name)
                expected_depth = gt.min_cex_depth(prop.name, assumed)
                result = bmc_check(ts, prop.name, max_depth=20, assumed=assumed)
                if expected_depth is None:
                    assert result.status is PropStatus.UNKNOWN
                else:
                    assert result.fails, (seed, prop.name)
                    assert result.frames == expected_depth
