"""Tests for the IC3/PDR engine: verdicts, invariants, lifting, seeds."""

from __future__ import annotations

import pytest

from repro.circuit.aig import AIG, aig_not
from repro.engines.ic3 import IC3, IC3Options, SeedCertificateError, ic3_check
from repro.engines.result import PropStatus, ResourceBudget
from repro.gen.counter import buggy_counter, fixed_counter
from repro.gen.random_designs import random_design
from repro.sat import Solver, Status
from repro.ts.projection import ProjectedReachability, assumption_names
from repro.ts.system import TransitionSystem, negate_cube


def check_invariant(ts, prop_name, clauses, assumed=()):
    """Independent certificate check: I ⊆ F, F ∧ C ∧ T ⊆ F', F ⊆ P."""
    for clause in clauses:
        assert ts.clause_holds_at_init(clause)
    solver = Solver()
    enc = ts.encode_step(solver)
    for name in assumed:
        solver.add_clause([enc.prop_curr[name]])
    for clause in clauses:
        solver.add_clause(enc.clause_lits_curr(clause))
    for clause in clauses:
        cube = negate_cube(clause)
        assert solver.solve(enc.cube_lits_next(cube)) == Status.UNSAT
    bad = Solver()
    bad_enc = ts.encode_bad_frame(bad)
    for clause in clauses:
        bad.add_clause(bad_enc.clause_lits_curr(clause))
    assert bad.solve([-bad_enc.prop_curr[prop_name]]) == Status.UNSAT


class TestExample1:
    def test_p0_fails_globally(self, counter4):
        result = ic3_check(counter4, "P0")
        assert result.status is PropStatus.FAILS
        assert result.frames == 1

    def test_p1_fails_globally_with_deep_cex(self, counter4):
        result = ic3_check(counter4, "P1")
        assert result.status is PropStatus.FAILS
        assert len(result.cex) == 10  # shortest CEX: val reaches 9
        assert result.cex.validate(counter4.aig, counter4.prop_by_name["P1"].lit)

    def test_p1_holds_locally(self, counter4):
        result = ic3_check(counter4, "P1", IC3Options(assumed=("P0",)))
        assert result.status is PropStatus.HOLDS
        assert result.invariant is not None
        check_invariant(counter4, "P1", result.invariant, assumed=("P0",))

    def test_p0_fails_locally(self, counter4):
        result = ic3_check(counter4, "P0", IC3Options(assumed=("P1",)))
        assert result.status is PropStatus.FAILS
        assert result.frames == 1

    def test_local_proof_flat_in_counter_width(self):
        # The heart of Table I: the *global* CEX depth grows as 2^(bits-1)
        # but the local proof effort stays polynomial (frames grow at most
        # linearly, versus the exponential global trace length).
        for bits in (4, 6, 8):
            ts = TransitionSystem(buggy_counter(bits))
            result = ic3_check(ts, "P1", IC3Options(assumed=("P0",)))
            assert result.holds
            assert result.frames <= bits + 2

    def test_fixed_counter_p1_global_proof(self):
        ts = TransitionSystem(fixed_counter(4))
        result = ic3_check(ts, "P1")
        assert result.holds
        check_invariant(ts, "P1", result.invariant)


class TestVerdictsAgainstGroundTruth:
    def test_global_verdicts(self):
        for seed in range(40):
            ts = TransitionSystem(random_design(seed))
            gt = ProjectedReachability(ts)
            for prop in ts.properties:
                result = ic3_check(ts, prop.name)
                assert not result.unknown
                assert result.fails == gt.fails_globally(prop.name), (seed, prop.name)
                if result.holds:
                    check_invariant(ts, prop.name, result.invariant)

    def test_local_verdicts_respecting_lifting(self):
        # With constraint-respecting lifting there are no spurious CEXs:
        # the engine verdict equals the T^P ground truth directly.
        for seed in range(30):
            ts = TransitionSystem(random_design(seed))
            gt = ProjectedReachability(ts)
            for prop in ts.properties:
                assumed = assumption_names(ts, prop.name)
                result = ic3_check(
                    ts,
                    prop.name,
                    IC3Options(assumed=assumed, respect_constraints_in_lifting=True),
                )
                assert not result.unknown
                expected = gt.fails(prop.name, assumed)
                assert result.fails == expected, (seed, prop.name)
                if result.holds:
                    check_invariant(ts, prop.name, result.invariant, assumed)

    def test_ignoring_lifting_sound_for_proofs(self):
        # Ignoring constraints in lifting may yield spurious CEXs but a
        # HOLDS verdict is always correct, and every CEX is at least a
        # genuine *global* trace refuting the property at its last frame.
        for seed in range(30):
            ts = TransitionSystem(random_design(seed))
            gt = ProjectedReachability(ts)
            for prop in ts.properties:
                assumed = assumption_names(ts, prop.name)
                result = ic3_check(ts, prop.name, IC3Options(assumed=assumed))
                assert not result.unknown
                if result.holds:
                    assert not gt.fails(prop.name, assumed), (seed, prop.name)
                else:
                    assert result.cex.validate(ts.aig, prop.lit)

    def test_cex_not_shorter_than_bfs_optimum(self):
        for seed in range(20):
            ts = TransitionSystem(random_design(seed))
            gt = ProjectedReachability(ts)
            for prop in ts.properties:
                result = ic3_check(ts, prop.name)
                if result.fails:
                    assert len(result.cex) >= gt.min_cex_depth(prop.name, ())


class TestSeeds:
    def test_valid_seed_accepted_and_preserves_verdict(self, counter4):
        first = ic3_check(counter4, "P1", IC3Options(assumed=("P0",)))
        assert first.holds
        again = ic3_check(
            counter4,
            "P1",
            IC3Options(assumed=("P0",), seed_clauses=first.invariant),
        )
        assert again.holds
        check_invariant(counter4, "P1", again.invariant, assumed=("P0",))

    def test_seed_violating_init_rejected(self, counter4):
        # Clause "val[0]" is false at the initial state (val=0).
        with pytest.raises(ValueError):
            ic3_check(counter4, "P1", IC3Options(seed_clauses=[(1,)]))

    def test_poisoned_seed_raises_certificate_error(self):
        # Design: x free input feeds q; r counts one step behind.
        # Clause (-1,) ("q is always 0") holds at init but is NOT
        # inductive; a seeded run that converges must detect it.
        aig = AIG()
        x = aig.add_input("x")
        q = aig.add_latch("q", init=0)
        aig.set_next(q, x)
        aig.add_property("p", 1)  # trivially true property
        ts = TransitionSystem(aig)
        with pytest.raises(SeedCertificateError):
            ic3_check(ts, "p", IC3Options(seed_clauses=[(-1,)]))

    def test_invariant_exports_are_reusable_across_properties(self):
        # Clauses exported while proving one ring property seed the next.
        from repro.gen.blocks import token_ring_slice

        aig = AIG()
        names = token_ring_slice(aig, "r", 5)
        ts = TransitionSystem(aig)
        first = ic3_check(ts, names[0])
        assert first.holds and first.invariant
        second = ic3_check(
            ts, names[1], IC3Options(seed_clauses=first.invariant)
        )
        assert second.holds
        check_invariant(ts, names[1], second.invariant)


class TestBudgets:
    def test_conflict_budget_unknown(self, counter4):
        budget = ResourceBudget(conflict_limit=1)
        result = ic3_check(counter4, "P1", IC3Options(budget=budget))
        assert result.status is PropStatus.UNKNOWN

    def test_max_frames_unknown(self):
        ts = TransitionSystem(fixed_counter(5))
        result = ic3_check(ts, "P1", IC3Options(max_frames=1))
        assert result.status in (PropStatus.UNKNOWN, PropStatus.HOLDS)


class TestEdgeCases:
    def test_no_latches_combinational_true(self):
        aig = AIG()
        x = aig.add_input("x")
        aig.add_property("p", aig_not(aig.and_(x, aig_not(x))))
        result = ic3_check(TransitionSystem(aig), "p")
        assert result.holds

    def test_no_latches_combinational_false(self):
        aig = AIG()
        x = aig.add_input("x")
        aig.add_property("p", x)
        result = ic3_check(TransitionSystem(aig), "p")
        assert result.fails
        assert result.frames == 1

    def test_input_only_property_on_sequential_design(self):
        # The lift of a bad state may drop every latch; the engine must
        # not emit empty cubes (Example 1's P0 exercises this).
        aig = AIG()
        x = aig.add_input("x")
        q = aig.add_latch("q", init=0)
        aig.set_next(q, q)
        aig.add_property("p", x)
        result = ic3_check(TransitionSystem(aig), "p")
        assert result.fails and result.frames == 1

    def test_uninitialized_latch_cex(self):
        aig = AIG()
        q = aig.add_latch("q", init=None)
        aig.set_next(q, q)
        aig.add_property("p", aig_not(q))
        result = ic3_check(TransitionSystem(aig), "p")
        assert result.fails
        assert result.cex.uninit[q] is True

    def test_self_assumption_rejected(self, counter4):
        with pytest.raises(ValueError):
            ic3_check(counter4, "P1", IC3Options(assumed=("P1",)))

    def test_aig_constraints_respected(self):
        # With the constraint x==0 the latch can never rise: p holds.
        aig = AIG()
        x = aig.add_input("x")
        q = aig.add_latch("q", init=0)
        aig.set_next(q, x)
        aig.add_property("p", aig_not(q))
        aig.add_constraint(aig_not(x))
        result = ic3_check(TransitionSystem(aig), "p")
        assert result.holds
