"""Tests for result types and resource budgets."""

from __future__ import annotations

import time

from repro.engines.result import EngineResult, PropStatus, ResourceBudget


class TestEngineResult:
    def test_status_predicates(self):
        holds = EngineResult(status=PropStatus.HOLDS, prop_name="p")
        fails = EngineResult(status=PropStatus.FAILS, prop_name="p")
        unknown = EngineResult(status=PropStatus.UNKNOWN, prop_name="p")
        assert holds.holds and not holds.fails and not holds.unknown
        assert fails.fails and not fails.holds
        assert unknown.unknown

    def test_status_str(self):
        assert str(PropStatus.HOLDS) == "holds"
        assert str(PropStatus.FAILS) == "fails"


class TestResourceBudget:
    def test_no_limits_never_exhausts(self):
        budget = ResourceBudget()
        budget.charge_conflicts(10**9)
        assert not budget.exhausted()

    def test_conflict_limit(self):
        budget = ResourceBudget(conflict_limit=10)
        budget.charge_conflicts(10)
        assert not budget.exhausted()  # strict inequality
        budget.charge_conflicts(1)
        assert budget.exhausted()

    def test_time_limit(self):
        budget = ResourceBudget(time_limit=0.0)
        time.sleep(0.01)
        assert budget.exhausted()

    def test_elapsed_monotone(self):
        budget = ResourceBudget()
        first = budget.elapsed()
        time.sleep(0.005)
        assert budget.elapsed() >= first

    def test_combined_limits(self):
        budget = ResourceBudget(time_limit=1000.0, conflict_limit=5)
        assert not budget.exhausted()
        budget.charge_conflicts(6)
        assert budget.exhausted()
