"""Tests for the standalone certification API."""

from __future__ import annotations

from repro.engines.certify import certify_cex, certify_invariant
from repro.engines.ic3 import IC3Options, ic3_check
from repro.gen.counter import buggy_counter
from repro.gen.random_designs import random_design
from repro.ts.system import TransitionSystem
from repro.ts.trace import Trace


class TestCertifyInvariant:
    def test_accepts_engine_invariants(self):
        for seed in range(15):
            ts = TransitionSystem(random_design(seed))
            for prop in ts.properties:
                result = ic3_check(ts, prop.name)
                if result.holds:
                    report = certify_invariant(ts, prop.name, result.invariant)
                    assert report.valid, report.reason

    def test_accepts_local_invariants(self, counter4):
        result = ic3_check(counter4, "P1", IC3Options(assumed=("P0",)))
        assert result.holds
        report = certify_invariant(counter4, "P1", result.invariant, assumed=("P0",))
        assert report.valid
        # Without the assumption the same clause set must NOT certify P1
        # (P1 is globally false).
        report = certify_invariant(counter4, "P1", result.invariant)
        assert not report.valid

    def test_rejects_init_violation(self, counter4):
        report = certify_invariant(counter4, "P1", [(1,)], assumed=("P0",))
        assert not report.valid
        assert "initial" in report.reason

    def test_rejects_non_inductive(self):
        from repro.circuit.aig import AIG, aig_not

        aig = AIG()
        x = aig.add_input("x")
        q = aig.add_latch("q", init=0)
        aig.set_next(q, x)
        aig.add_property("p", 1)
        ts = TransitionSystem(aig)
        report = certify_invariant(ts, "p", [(-1,)])  # "q stays 0": wrong
        assert not report.valid
        assert "inductive" in report.reason

    def test_rejects_unknown_names(self, counter4):
        assert not certify_invariant(counter4, "zzz", [])
        assert not certify_invariant(counter4, "P1", [], assumed=("zzz",))

    def test_rejects_invariant_not_implying_property(self, toggler):
        # Empty invariant proves nothing about the failing property.
        report = certify_invariant(toggler, "never_q", [])
        assert not report.valid
        assert "imply" in report.reason


class TestCertifyCex:
    def test_accepts_valid_cex(self, counter4):
        result = ic3_check(counter4, "P0")
        report = certify_cex(counter4, "P0", result.cex)
        assert report.valid

    def test_rejects_wrong_frame(self, toggler):
        trace = Trace(inputs=[{}, {}, {}])  # fails at 1, not at 2
        report = certify_cex(toggler, "never_q", trace)
        assert not report.valid
        assert "frame" in report.reason

    def test_rejects_non_failing_trace(self, toggler):
        trace = Trace(inputs=[{}])
        assert not certify_cex(toggler, "never_q", trace)

    def test_rejects_empty_trace(self, toggler):
        assert not certify_cex(toggler, "never_q", Trace(inputs=[]))

    def test_local_side_condition(self, counter4):
        # A trace where P0 fails before P1 is spurious as a local CEX for P1.
        enable, req = counter4.aig.inputs
        inputs = [{enable: True, req: False} for _ in range(10)]
        trace = Trace(inputs=inputs)
        prop = counter4.prop_by_name["P1"]
        assert trace.validate(counter4.aig, prop.lit)
        assert certify_cex(counter4, "P1", trace).valid
        report = certify_cex(counter4, "P1", trace, assumed=("P0",))
        assert not report.valid
        assert "spurious" in report.reason
