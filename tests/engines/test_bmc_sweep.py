"""Tests for multi-property BMC sweeping."""

from __future__ import annotations

from repro.engines.bmc import bmc_sweep
from repro.engines.result import PropStatus, ResourceBudget
from repro.gen.random_designs import random_design
from repro.ts.projection import ProjectedReachability
from repro.ts.system import TransitionSystem


class TestBmcSweep:
    def test_counter(self, counter4):
        results = bmc_sweep(counter4, max_depth=16)
        assert results["P0"].fails and results["P0"].frames == 1
        assert results["P1"].fails and results["P1"].frames == 10

    def test_depth_limit(self, counter4):
        results = bmc_sweep(counter4, max_depth=4)
        assert results["P0"].fails
        assert results["P1"].unknown

    def test_subset_of_properties(self, counter4):
        results = bmc_sweep(counter4, max_depth=4, names=["P0"])
        assert set(results) == {"P0"}

    def test_minimal_depths_match_ground_truth(self):
        for seed in range(20):
            ts = TransitionSystem(random_design(seed))
            gt = ProjectedReachability(ts)
            results = bmc_sweep(ts, max_depth=18)
            for prop in ts.properties:
                expected = gt.min_cex_depth(prop.name, ())
                result = results[prop.name]
                if expected is None:
                    assert result.unknown, (seed, prop.name)
                else:
                    assert result.fails and result.frames == expected, (
                        seed,
                        prop.name,
                    )

    def test_all_cexs_validate(self):
        for seed in range(10):
            ts = TransitionSystem(random_design(seed))
            for name, result in bmc_sweep(ts, max_depth=12).items():
                if result.fails:
                    assert result.cex.validate(ts.aig, ts.prop_by_name[name].lit)

    def test_budget_stops_early(self, counter4):
        budget = ResourceBudget(time_limit=0.0)
        import time

        time.sleep(0.01)
        results = bmc_sweep(counter4, max_depth=16, budget=budget)
        assert all(r.unknown for r in results.values())

    def test_shared_unrolling_cheaper_than_separate(self, counter4):
        from repro.engines.bmc import bmc_check

        sweep_results = bmc_sweep(counter4, max_depth=12)
        separate_queries = 0
        for name in ("P0", "P1"):
            separate_queries += bmc_check(counter4, name, max_depth=12).stats[
                "sat_queries"
            ]
        assert sweep_results["P0"].stats["sat_queries"] <= separate_queries
