"""Tests for ternary simulation and state lifting."""

from __future__ import annotations

import random

import pytest

from repro.circuit.aig import AIG, aig_not
from repro.circuit.simulate import Simulator
from repro.engines.ic3.ternary import TernaryEvaluator, lift_state
from repro.gen.random_designs import random_design


class TestTernaryEvaluator:
    def setup_method(self):
        self.aig = AIG()
        self.a = self.aig.add_input("a")
        self.b = self.aig.add_input("b")
        self.g = self.aig.and_(self.a, self.b)
        self.evaluator = TernaryEvaluator(self.aig)

    def _eval(self, lit, inputs):
        return self.evaluator.evaluate([lit], {}, inputs)[0]

    def test_definite_values(self):
        assert self._eval(self.g, {self.a: True, self.b: True}) is True
        assert self._eval(self.g, {self.a: True, self.b: False}) is False

    def test_false_dominates_x(self):
        assert self._eval(self.g, {self.a: False, self.b: None}) is False

    def test_x_propagates(self):
        assert self._eval(self.g, {self.a: True, self.b: None}) is None

    def test_negation_of_x_is_x(self):
        assert self._eval(aig_not(self.g), {self.a: True, self.b: None}) is None

    def test_missing_leaf_defaults_to_x(self):
        assert self._eval(self.g, {self.a: True}) is None

    def test_constants(self):
        assert self._eval(0, {}) is False
        assert self._eval(1, {}) is True

    def test_conservative_wrt_concrete(self):
        # A definite ternary value must equal the concrete value for every
        # completion of the X-ed inputs.
        rng = random.Random(5)
        for seed in range(20):
            aig = random_design(seed, n_props=1)
            evaluator = TernaryEvaluator(aig)
            sim = Simulator(aig)
            root = aig.properties[0].lit
            latch_vals = {l.lit: rng.random() < 0.5 for l in aig.latches}
            input_vals = {
                x: rng.choice([True, False, None]) for x in aig.inputs
            }
            ternary = evaluator.evaluate([root], latch_vals, input_vals)[0]
            if ternary is None:
                continue
            sim.state = dict(latch_vals)
            for completion in range(4):
                concrete = {
                    x: (v if v is not None else bool(completion & 1))
                    for x, v in input_vals.items()
                }
                assert sim.eval_lit(root, concrete) == ternary


class TestLiftState:
    def test_drops_irrelevant_latches(self):
        aig = AIG()
        q0 = aig.add_latch("q0", init=0)
        q1 = aig.add_latch("q1", init=0)
        aig.set_next(q0, q0)
        aig.set_next(q1, q1)
        lifted = lift_state(
            aig,
            latch_order=[q0, q1],
            latch_values=[True, True],
            input_values={},
            require_true=[q0],
        )
        assert lifted == [True, None]  # q1 is irrelevant to the target

    def test_keeps_required_latches(self):
        aig = AIG()
        q0 = aig.add_latch("q0", init=0)
        q1 = aig.add_latch("q1", init=0)
        g = aig.and_(q0, q1)
        lifted = lift_state(
            aig, [q0, q1], [True, True], {}, require_true=[g]
        )
        assert lifted == [True, True]

    def test_require_false(self):
        aig = AIG()
        q0 = aig.add_latch("q0", init=0)
        q1 = aig.add_latch("q1", init=0)
        g = aig.and_(q0, q1)
        lifted = lift_state(
            aig, [q0, q1], [False, True], {}, require_true=[], require_false=[g]
        )
        # q0=False alone falsifies g: q1 can be lifted away.
        assert lifted == [False, None]

    def test_rejects_violated_targets(self):
        aig = AIG()
        q0 = aig.add_latch("q0", init=0)
        with pytest.raises(ValueError):
            lift_state(aig, [q0], [False], {}, require_true=[q0])

    def test_lifting_is_sound(self):
        # Every completion of the lifted cube keeps the targets definite.
        rng = random.Random(11)
        for seed in range(15):
            aig = random_design(seed, n_props=2)
            latch_order = [l.lit for l in aig.latches]
            sim = Simulator(aig)
            state = [rng.random() < 0.5 for _ in latch_order]
            inputs = {x: rng.random() < 0.5 for x in aig.inputs}
            sim.state = dict(zip(latch_order, state))
            target = aig.properties[0].lit
            want = sim.eval_lit(target, inputs)
            lifted = lift_state(
                aig,
                latch_order,
                state,
                inputs,
                require_true=[target] if want else [],
                require_false=[] if want else [target],
            )
            free = [i for i, v in enumerate(lifted) if v is None]
            for completion in range(1 << min(len(free), 5)):
                values = list(lifted)
                for k, idx in enumerate(free[:5]):
                    values[idx] = bool((completion >> k) & 1)
                for idx, v in enumerate(values):
                    if v is None:
                        values[idx] = state[idx]
                sim.state = dict(zip(latch_order, values))
                assert sim.eval_lit(target, inputs) == want
