"""Tests for the k-induction cross-check engine."""

from __future__ import annotations

from repro.circuit.aig import AIG, aig_not
from repro.engines.kinduction import kinduction_check
from repro.engines.result import PropStatus
from repro.gen.counter import buggy_counter, fixed_counter
from repro.gen.random_designs import random_design
from repro.ts.projection import ProjectedReachability
from repro.ts.system import TransitionSystem


class TestBasic:
    def test_inductive_property_proved_at_k0(self):
        aig = AIG()
        q = aig.add_latch("q", init=0)
        aig.set_next(q, q)
        aig.add_property("p", aig_not(q))
        result = kinduction_check(TransitionSystem(aig), "p")
        assert result.holds

    def test_counterexample_found(self, toggler):
        result = kinduction_check(toggler, "never_q", max_k=4)
        assert result.fails
        assert result.frames == 2

    def test_true_property(self, toggler):
        result = kinduction_check(toggler, "never_r", max_k=4)
        assert result.holds

    def test_counter_p1_fails(self, counter4):
        result = kinduction_check(counter4, "P1", max_k=16)
        assert result.fails
        assert result.frames == 10

    def test_counter_p1_local_holds(self, counter4):
        result = kinduction_check(counter4, "P1", max_k=16, assumed=["P0"])
        assert result.holds

    def test_fixed_counter_needs_uniqueness(self):
        # P1 on the fixed counter is not plain-inductive at small k but
        # provable with simple-path constraints on a finite system.
        ts = TransitionSystem(fixed_counter(3))
        result = kinduction_check(ts, "P1", max_k=24, unique_states=True)
        assert result.holds


class TestAgreesWithGroundTruth:
    def test_small_random_designs(self):
        for seed in range(15):
            ts = TransitionSystem(random_design(seed))
            gt = ProjectedReachability(ts)
            for prop in ts.properties:
                result = kinduction_check(ts, prop.name, max_k=18)
                expected_fail = gt.fails_globally(prop.name)
                if result.status is PropStatus.UNKNOWN:
                    continue  # k-induction may fail to converge; never wrong
                assert result.fails == expected_fail, (seed, prop.name)

    def test_agrees_with_ic3(self):
        from repro.engines.ic3 import ic3_check

        for seed in range(40, 55):
            ts = TransitionSystem(random_design(seed))
            for prop in ts.properties:
                kind = kinduction_check(ts, prop.name, max_k=18)
                if kind.status is PropStatus.UNKNOWN:
                    continue
                ic3 = ic3_check(ts, prop.name)
                assert kind.status == ic3.status, (seed, prop.name)
