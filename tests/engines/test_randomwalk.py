"""Differential tests for the random-walk falsifier.

The falsifier's contract is easy to state and therefore easy to test
hard: it may answer FAILS only with a replay-validated trace, it may
never answer HOLDS, and under local (JA) semantics it may never report
a walk that left the projected system.  Every claim is checked against
:class:`~repro.ts.projection.ProjectedReachability` explicit-state
ground truth on Hypothesis-driven random designs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engines.randomwalk import derive_seed, randomwalk_check
from repro.engines.result import PropStatus, ResourceBudget
from repro.gen.counter import buggy_counter, fixed_counter
from repro.gen.random_designs import random_design
from repro.ts.projection import ProjectedReachability, assumption_names
from repro.ts.system import TransitionSystem


def _replays_false(ts: TransitionSystem, result) -> bool:
    lit = ts.prop_by_name[result.prop_name].lit
    return result.cex is not None and result.cex.validate(ts.aig, lit)


class TestCounterExample1:
    def test_p0_found_immediately(self, counter4):
        result = randomwalk_check(counter4, "P0", seed=1)
        assert result.status is PropStatus.FAILS
        assert _replays_false(counter4, result)
        # P0 (req == 1) fails at reset: the shortest possible trace.
        assert len(result.cex) == 1

    def test_p1_deep_failure_found_by_deepening(self, counter4):
        # P1 first fails at frame 9 — beyond the initial walk depth of
        # 8, so only the doubling restart schedule can reach it.
        result = randomwalk_check(counter4, "P1", seed=3)
        assert result.status is PropStatus.FAILS
        assert _replays_false(counter4, result)
        assert len(result.cex) >= 10

    def test_p1_unknown_under_p0_assumption(self, counter4):
        # Locally (req==1 assumed) the counter always resets: no CEX
        # exists, and the walk must not fabricate one.
        result = randomwalk_check(counter4, "P1", assumed=["P0"], seed=3)
        assert result.status is PropStatus.UNKNOWN

    def test_fixed_counter_never_fails(self):
        ts = TransitionSystem(fixed_counter(4))
        result = randomwalk_check(ts, "P1", seed=0, restarts=128)
        assert result.status is PropStatus.UNKNOWN


class TestGuards:
    def test_self_assumption_rejected(self, counter4):
        with pytest.raises(ValueError):
            randomwalk_check(counter4, "P1", assumed=["P1"])

    def test_unknown_property_rejected(self, counter4):
        with pytest.raises(KeyError):
            randomwalk_check(counter4, "nope")

    def test_exhausted_budget_returns_unknown(self, counter4):
        budget = ResourceBudget(conflict_limit=0, time_limit=None)
        budget.charge_conflicts(1)
        result = randomwalk_check(counter4, "P0", budget=budget)
        assert result.status is PropStatus.UNKNOWN
        assert result.cex is None


class TestAgainstGroundTruth:
    """Soundness vs explicit-state reachability, global and local."""

    @given(
        design_seed=st.integers(min_value=0, max_value=5_000),
        walk_seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_global_verdicts_sound(self, design_seed: int, walk_seed: int):
        ts = TransitionSystem(random_design(design_seed))
        gt = ProjectedReachability(ts)
        for prop in ts.properties:
            result = randomwalk_check(
                ts, prop.name, max_depth=32, restarts=48, seed=walk_seed
            )
            assert result.status is not PropStatus.HOLDS
            if result.status is PropStatus.FAILS:
                assert gt.fails_globally(prop.name), (design_seed, prop.name)
                assert _replays_false(ts, result)
                min_depth = gt.min_cex_depth(prop.name, ())
                assert min_depth is not None
                assert len(result.cex) >= min_depth

    @given(
        design_seed=st.integers(min_value=0, max_value=5_000),
        walk_seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_local_verdicts_sound(self, design_seed: int, walk_seed: int):
        ts = TransitionSystem(random_design(design_seed))
        gt = ProjectedReachability(ts)
        for prop in ts.properties:
            assumed = assumption_names(ts, prop.name)
            result = randomwalk_check(
                ts,
                prop.name,
                max_depth=32,
                restarts=48,
                seed=walk_seed,
                assumed=assumed,
            )
            assert result.status is not PropStatus.HOLDS
            if result.status is PropStatus.FAILS:
                # The verdict must exist in the projected system ...
                assert gt.fails(prop.name, assumed), (design_seed, prop.name)
                assert _replays_false(ts, result)
                # ... and no assumed property may fail strictly before
                # the target along the returned trace (the paper's
                # spurious-CEX criterion).
                lits = {n: ts.prop_by_name[n].lit for n in assumed}
                frame, _ = result.cex.first_failures(ts.aig, lits)
                assert frame is None or frame >= len(result.cex) - 1

    def test_finds_all_shallow_failures(self):
        # Deterministic completeness spot-check: on these seeds the
        # walk (itself seeded) finds every globally failing property
        # that explicit-state search says has a CEX within depth 16.
        for design_seed in range(20):
            ts = TransitionSystem(random_design(design_seed))
            gt = ProjectedReachability(ts)
            for prop in ts.properties:
                min_depth = gt.min_cex_depth(prop.name, ())
                if min_depth is None or min_depth > 16:
                    continue
                result = randomwalk_check(ts, prop.name, seed=7)
                assert result.status is PropStatus.FAILS, (
                    design_seed,
                    prop.name,
                )
                assert _replays_false(ts, result)


class TestDeterminism:
    @given(
        design_seed=st.integers(min_value=0, max_value=1_000),
        walk_seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=15, deadline=None)
    def test_equal_seeds_bit_identical(self, design_seed: int, walk_seed: int):
        ts = TransitionSystem(random_design(design_seed))
        name = ts.properties[0].name
        a = randomwalk_check(ts, name, max_depth=32, restarts=32, seed=walk_seed)
        b = randomwalk_check(ts, name, max_depth=32, restarts=32, seed=walk_seed)
        assert a.status is b.status
        assert a.frames == b.frames
        assert {k: v for k, v in a.stats.items()} == {
            k: v for k, v in b.stats.items()
        }
        if a.cex is None:
            assert b.cex is None
        else:
            assert a.cex.inputs == b.cex.inputs
            assert a.cex.uninit == b.cex.uninit

    def test_derive_seed_stable_and_distinct(self):
        # Pinned value: a regression here silently breaks every
        # recorded seeded portfolio run.
        assert derive_seed(7, "counter", "P0") == derive_seed(7, "counter", "P0")
        assert derive_seed(None, "d", "P0") == derive_seed(0, "d", "P0")
        distinct = {
            derive_seed(7, "counter", "P0"),
            derive_seed(7, "counter", "P1"),
            derive_seed(8, "counter", "P0"),
            derive_seed(7, "other", "P0"),
        }
        assert len(distinct) == 4
        for value in distinct:
            assert 0 <= value < 2**64

    def test_sub_seed_independent_of_sibling_properties(self):
        # Hash-based derivation: P0's sub-seed is the same whether the
        # design has one property or many (a counter-based scheme would
        # shift with property order).
        assert derive_seed(3, "design", "P0") == derive_seed(3, "design", "P0")
        before = derive_seed(3, "design", "P1")
        # Deriving other properties' seeds in between changes nothing.
        derive_seed(3, "design", "P5")
        derive_seed(3, "design", "P9")
        assert derive_seed(3, "design", "P1") == before
