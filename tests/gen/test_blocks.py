"""Tests for the benchmark building blocks: each block must have exactly
the local/global verification structure its docstring promises."""

from __future__ import annotations

import pytest

from repro.circuit.aig import AIG
from repro.engines.result import PropStatus
from repro.gen.blocks import (
    good_chain_slice,
    guarded_counter_slice,
    hold_slice,
    lfsr_ballast,
    token_ring_slice,
)
from repro.multiprop.ja import ja_verify
from repro.multiprop.separate import separate_verify
from repro.ts.projection import ProjectedReachability
from repro.ts.system import TransitionSystem


class TestGuardedCounterSlice:
    def test_property_names(self):
        aig = AIG()
        names = guarded_counter_slice(aig, "s", 4, 2, [3, 5])
        assert names == ["s_G", "s_D0", "s_D1", "s_T"]

    def test_ground_truth_structure(self):
        aig = AIG()
        guarded_counter_slice(aig, "s", 3, 1, [2])
        gt = ProjectedReachability(TransitionSystem(aig))
        assert gt.fails_globally("s_G")
        assert gt.fails_globally("s_D0")
        assert not gt.fails_globally("s_T")
        # Debugging set is exactly the guard.
        assert gt.debugging_set() == ["s_G"]

    def test_guard_cex_depth(self):
        aig = AIG()
        guarded_counter_slice(aig, "s", 3, 2, [])
        gt = ProjectedReachability(TransitionSystem(aig))
        assert gt.min_cex_depth("s_G", ()) == 3  # guard_depth + 1

    def test_dependent_depth_grows_with_value(self):
        aig = AIG()
        guarded_counter_slice(aig, "s", 3, 1, [2, 4])
        gt = ProjectedReachability(TransitionSystem(aig))
        d0 = gt.min_cex_depth("s_D0", ())
        d1 = gt.min_cex_depth("s_D1", ())
        assert d1 == d0 + 2  # two more increments needed

    def test_rejects_bad_parameters(self):
        aig = AIG()
        with pytest.raises(ValueError):
            guarded_counter_slice(aig, "s", 3, 0, [])
        with pytest.raises(ValueError):
            guarded_counter_slice(aig, "t", 3, 1, [8])


class TestTokenRingSlice:
    def test_all_properties_true(self):
        aig = AIG()
        token_ring_slice(aig, "r", 5)
        report = separate_verify(TransitionSystem(aig))
        assert not report.false_props()
        assert len(report.true_props()) == 5

    def test_n_props_limits(self):
        aig = AIG()
        names = token_ring_slice(aig, "r", 6, n_props=3)
        assert len(names) == 3

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            token_ring_slice(AIG(), "r", 2)


class TestGoodChainSlice:
    def test_all_true_and_locally_one_step(self):
        aig = AIG()
        names = good_chain_slice(aig, "c", 6)
        ts = TransitionSystem(aig)
        report = ja_verify(ts)
        assert report.true_props() == sorted(names)

    def test_expose_every(self):
        aig = AIG()
        names = good_chain_slice(aig, "c", 10, expose_every=3)
        assert names == ["c_C0", "c_C3", "c_C6", "c_C9"]

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            good_chain_slice(AIG(), "c", 0)


class TestHoldAndBallast:
    def test_hold_props_trivially_true(self):
        aig = AIG()
        names = hold_slice(aig, "z", 4)
        report = separate_verify(TransitionSystem(aig))
        assert report.true_props() == sorted(names)

    def test_ballast_adds_no_properties(self):
        aig = AIG()
        lfsr_ballast(aig, "b", 16)
        assert not aig.properties
        assert len(aig.latches) == 16

    def test_ballast_is_deterministic(self):
        a, b = AIG(), AIG()
        lfsr_ballast(a, "b", 12, seed=5)
        lfsr_ballast(b, "b", 12, seed=5)
        assert a.stats() == b.stats()
