"""Tests for the Example 1 counter generator."""

from __future__ import annotations

import pytest

from repro.circuit.simulate import Simulator
from repro.circuit import words
from repro.gen.counter import buggy_counter, fixed_counter


class TestBuggyCounter:
    def test_structure(self):
        aig = buggy_counter(8)
        stats = aig.stats()
        assert stats["latches"] == 8
        assert stats["inputs"] == 2
        assert [p.name for p in aig.properties] == ["P0", "P1"]

    def test_width_validation(self):
        with pytest.raises(ValueError):
            buggy_counter(1)
        with pytest.raises(ValueError):
            buggy_counter(4, rval=16)

    def test_counts_and_overflows_without_req(self):
        aig = buggy_counter(4)
        enable, req = aig.inputs
        val_bits = [l.lit for l in aig.latches]
        p1 = aig.properties[1].lit
        sim = Simulator(aig)
        stimulus = {enable: True, req: False}
        for t in range(9):  # counts 0..8 without failing
            assert sim.eval_lit(p1, stimulus)
            sim.step(stimulus)
        assert words.word_value([sim.state[b] for b in val_bits]) == 9
        assert not sim.eval_lit(p1, stimulus)  # val=9 > rval=8

    def test_resets_with_req_held_high(self):
        aig = buggy_counter(4)
        enable, req = aig.inputs
        val_bits = [l.lit for l in aig.latches]
        p1 = aig.properties[1].lit
        sim = Simulator(aig)
        stimulus = {enable: True, req: True}
        for _ in range(25):
            assert sim.eval_lit(p1, stimulus)
            sim.step(stimulus)
            assert words.word_value([sim.state[b] for b in val_bits]) <= 8

    def test_disabled_counter_holds(self):
        aig = buggy_counter(4)
        enable, req = aig.inputs
        val_bits = [l.lit for l in aig.latches]
        sim = Simulator(aig)
        sim.step({enable: False, req: False})
        assert words.word_value([sim.state[b] for b in val_bits]) == 0

    def test_custom_rval(self):
        aig = buggy_counter(4, rval=5)
        enable, req = aig.inputs
        p1 = aig.properties[1].lit
        sim = Simulator(aig)
        stimulus = {enable: True, req: False}
        for t in range(6):
            assert sim.eval_lit(p1, stimulus), t
            sim.step(stimulus)
        assert not sim.eval_lit(p1, stimulus)  # val=6 > rval=5


class TestFixedCounter:
    def test_never_overflows(self):
        aig = fixed_counter(4)
        enable, req = aig.inputs
        p1 = aig.properties[1].lit
        sim = Simulator(aig)
        import random

        rng = random.Random(0)
        for _ in range(60):
            stimulus = {enable: rng.random() < 0.9, req: rng.random() < 0.2}
            assert sim.eval_lit(p1, stimulus)
            sim.step(stimulus)
