"""Tests for the named benchmark families (the HWMCC stand-ins)."""

from __future__ import annotations

import pytest

from repro.gen.families import (
    ALL_TRUE_SPECS,
    FAILING_SPECS,
    LARGE_DESIGN_NAMES,
    all_true_designs,
    failing_designs,
    huge_design,
    large_design,
)
from repro.multiprop.ja import JAOptions, ja_verify
from repro.ts.system import TransitionSystem


class TestSpecs:
    def test_failing_designs_build(self):
        designs = failing_designs()
        assert set(designs) == set(FAILING_SPECS)
        for name, aig in designs.items():
            assert aig.properties, name
            assert aig.latches, name

    def test_all_true_designs_build(self):
        designs = all_true_designs()
        assert set(designs) == set(ALL_TRUE_SPECS)

    def test_large_designs_build(self):
        for name in LARGE_DESIGN_NAMES:
            aig = large_design(name)
            assert len(aig.properties) >= 40, name

    def test_unknown_large_design(self):
        with pytest.raises(KeyError):
            large_design("r999")

    def test_builds_are_deterministic(self):
        a = FAILING_SPECS["f207"].build()
        b = FAILING_SPECS["f207"].build()
        assert a.stats() == b.stats()
        assert [p.name for p in a.properties] == [p.name for p in b.properties]


class TestFailingStructure:
    """Each failing design must show the Table III signature: a small
    debugging set and no unsolved properties for JA."""

    @pytest.mark.parametrize("name", ["f260", "f175", "f254", "f207"])
    def test_debugging_set_is_the_guards(self, name):
        aig = FAILING_SPECS[name].build()
        ts = TransitionSystem(aig)
        report = ja_verify(ts, design_name=name)
        assert not report.unsolved()
        debug = report.debugging_set()
        expected_guards = sorted(
            p.name for p in ts.properties if p.name.endswith("_G")
        )
        assert debug == expected_guards

    def test_debugging_set_smaller_than_global_failures(self):
        # The defining Table III property, checked on one mid-size design.
        from repro.multiprop.separate import SeparateOptions, separate_verify

        aig = FAILING_SPECS["f254"].build()
        ts = TransitionSystem(aig)
        ja = ja_verify(ts)
        sep = separate_verify(ts, SeparateOptions(per_property_time=1.0))
        assert len(ja.debugging_set()) < len(sep.false_props())


class TestAllTrueStructure:
    @pytest.mark.parametrize("name", ["t135", "t256", "t273", "tbob"])
    def test_everything_holds(self, name):
        aig = ALL_TRUE_SPECS[name].build()
        report = ja_verify(TransitionSystem(aig), design_name=name)
        assert not report.debugging_set()
        assert not report.unsolved()


class TestHugeDesign:
    def test_chain_and_rings_present(self):
        aig = huge_design(chain_depth=20)
        names = [p.name for p in aig.properties]
        assert "c0_C0" in names and "c0_C19" in names
        assert any(n.startswith("r0_") for n in names)

    def test_sampled_properties_hold_locally(self):
        ts = TransitionSystem(huge_design(chain_depth=20))
        report = ja_verify(
            ts, JAOptions(order=["c0_C5", "c0_C15"], clause_reuse=False)
        )
        assert report.outcomes["c0_C5"].status.value == "holds"
        assert report.outcomes["c0_C15"].status.value == "holds"
