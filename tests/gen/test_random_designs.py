"""Tests for the random design generator used in differential testing."""

from __future__ import annotations

from repro.gen.random_designs import random_design


class TestRandomDesign:
    def test_deterministic_per_seed(self):
        a, b = random_design(42), random_design(42)
        assert a.stats() == b.stats()
        assert [p.lit for p in a.properties] == [p.lit for p in b.properties]

    def test_seeds_differ(self):
        stats = {str(random_design(s).stats()) for s in range(10)}
        assert len(stats) > 1

    def test_requested_shape(self):
        aig = random_design(0, n_latches=5, n_inputs=3, n_props=4)
        stats = aig.stats()
        assert stats["latches"] == 5
        assert stats["inputs"] == 3
        assert stats["properties"] == 4

    def test_all_latches_driven(self):
        aig = random_design(1)
        for latch in aig.latches:
            assert latch.next is not None

    def test_stays_enumerable(self):
        # The differential tests rely on explicit enumeration being cheap.
        from repro.ts.projection import ProjectedReachability
        from repro.ts.system import TransitionSystem

        gt = ProjectedReachability(TransitionSystem(random_design(3)))
        assert gt.reachable_states(())
