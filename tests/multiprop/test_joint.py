"""Tests for joint verification (Jnt-ver analogue)."""

from __future__ import annotations

from repro.circuit.aig import AIG, aig_not
from repro.engines.result import PropStatus
from repro.gen.random_designs import random_design
from repro.multiprop.joint import JointOptions, joint_verify
from repro.ts.projection import ProjectedReachability
from repro.ts.system import TransitionSystem


class TestExample1:
    def test_finds_both_failures(self, counter4):
        report = joint_verify(counter4)
        assert report.false_props() == ["P0", "P1"]
        assert report.stats["iterations"] == 2

    def test_verdicts_are_global(self, counter4):
        report = joint_verify(counter4)
        assert all(not o.local for o in report.outcomes.values())
        assert report.debugging_set() == []  # global method: no debug info


class TestAgainstGroundTruth:
    def test_complete_on_small_designs(self):
        for seed in range(40):
            ts = TransitionSystem(random_design(seed))
            gt = ProjectedReachability(ts)
            report = joint_verify(ts)
            assert not report.unsolved(), seed
            expected_false = sorted(
                p.name for p in ts.properties if gt.fails_globally(p.name)
            )
            assert report.false_props() == expected_false, seed

    def test_cex_depths_non_decreasing_across_iterations(self):
        # Jnt-ver removes refuted properties and re-runs; later CEXs can
        # only be deeper or equal (the first failure frame of the shrunken
        # aggregate cannot get earlier).
        for seed in range(20):
            ts = TransitionSystem(random_design(seed))
            report = joint_verify(ts)
            depths = [
                o.cex_depth
                for o in report.outcomes.values()  # insertion = discovery order
                if o.cex_depth is not None
            ]
            assert depths == sorted(depths), seed


class TestBudgets:
    def test_zero_budget_reports_all_unknown(self, counter4):
        report = joint_verify(counter4, JointOptions(total_time=0.0))
        assert len(report.unsolved()) == 2

    def test_conflict_budget(self):
        aig = random_design(3)
        ts = TransitionSystem(aig)
        report = joint_verify(ts, JointOptions(total_conflicts=0))
        # With a zero conflict budget at most the trivial iteration runs.
        assert len(report.outcomes) == len(ts.properties)


class TestAllTrue:
    def test_single_iteration_when_all_hold(self):
        aig = AIG()
        q = aig.add_latch("q", init=0)
        aig.set_next(q, q)
        aig.add_property("a", aig_not(q))
        r = aig.add_latch("r", init=1)
        aig.set_next(r, r)
        aig.add_property("b", r)
        report = joint_verify(TransitionSystem(aig))
        assert report.true_props() == ["a", "b"]
        assert report.stats["iterations"] == 1

    def test_aggregate_not_registered_on_design(self, counter4):
        n_before = len(counter4.aig.properties)
        joint_verify(counter4)
        assert len(counter4.aig.properties) == n_before
