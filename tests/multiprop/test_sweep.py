"""Tests for random-simulation property sweeping."""

from __future__ import annotations

from repro.circuit.aig import AIG, aig_not
from repro.gen.blocks import guarded_counter_slice
from repro.gen.counter import buggy_counter
from repro.gen.random_designs import random_design
from repro.multiprop.sweep import sweep, swept_ja_verify
from repro.ts.projection import ProjectedReachability
from repro.ts.system import TransitionSystem


class TestSweep:
    def test_finds_shallow_failures(self, counter4):
        result = sweep(counter4, runs=8, depth=4, seed=1)
        assert "P0" in result.failed  # req==1 fails on almost any stimulus

    def test_witnesses_validate(self, counter4):
        result = sweep(counter4, runs=16, depth=24, seed=2)
        for name, trace in result.failed.items():
            prop = counter4.prop_by_name[name]
            assert trace.validate(counter4.aig, prop.lit), name

    def test_never_false_positives(self):
        # Anything the sweep calls failed must be globally false.
        for seed in range(20):
            ts = TransitionSystem(random_design(seed))
            gt = ProjectedReachability(ts)
            result = sweep(ts, runs=16, depth=12, seed=seed)
            for name in result.failed:
                assert gt.fails_globally(name), (seed, name)

    def test_survivors_plus_failed_cover_all(self, counter4):
        result = sweep(counter4, runs=4, depth=4, seed=0)
        assert set(result.survivors) | set(result.failed) == {"P0", "P1"}

    def test_deterministic(self, counter4):
        a = sweep(counter4, runs=8, depth=8, seed=5)
        b = sweep(counter4, runs=8, depth=8, seed=5)
        assert sorted(a.failed) == sorted(b.failed)
        assert a.frames_simulated == b.frames_simulated

    def test_respects_constraints(self):
        # With the constraint req==0, P0-like failures are mandatory but
        # runs that violate the constraint must be abandoned.
        aig = AIG()
        x = aig.add_input("x")
        q = aig.add_latch("q", init=0)
        aig.set_next(q, x)
        aig.add_property("p", aig_not(q))
        aig.add_constraint(aig_not(x))
        ts = TransitionSystem(aig)
        result = sweep(ts, runs=16, depth=8, seed=0)
        # q can never rise under the constraint: no witness may exist.
        assert "p" not in result.failed

    def test_dominated_preview(self):
        aig = AIG()
        guarded_counter_slice(aig, "s", 3, 1, [2])
        ts = TransitionSystem(aig)
        result = sweep(ts, runs=32, depth=16, seed=3)
        preview = result.dominated_preview(ts)
        if "s_D0" in preview:
            # Whenever the dependent fails, the guard fails at the first
            # failure frame of the witness.
            assert "s_G" in preview["s_D0"]


class TestSweptJA:
    def test_verdicts_match_plain_ja(self, counter4):
        from repro.multiprop.ja import ja_verify

        swept = swept_ja_verify(counter4, sweep_runs=8, sweep_depth=8)
        plain = ja_verify(counter4)
        assert swept.debugging_set() == plain.debugging_set()
        assert swept.method == "sweep+ja"
        assert swept.stats["sweep_failed"] >= 1
