"""Tests for JA-verification: debugging sets, spurious CEXs, ETF, reuse."""

from __future__ import annotations

import pytest

from repro.circuit.aig import AIG, aig_not
from repro.engines.result import PropStatus
from repro.gen.blocks import guarded_counter_slice, token_ring_slice
from repro.gen.counter import buggy_counter
from repro.gen.random_designs import random_design
from repro.multiprop.ja import JAOptions, JAVerifier, ja_verify
from repro.ts.projection import ProjectedReachability
from repro.ts.system import TransitionSystem


class TestExample1:
    def test_debugging_set_is_p0(self, counter4):
        report = ja_verify(counter4)
        assert report.debugging_set() == ["P0"]
        assert report.true_props() == ["P1"]
        assert not report.unsolved()

    def test_outcomes_are_local(self, counter4):
        report = ja_verify(counter4)
        assert all(o.local for o in report.outcomes.values())

    def test_p0_cex_is_shallow(self, counter4):
        report = ja_verify(counter4)
        assert report.outcomes["P0"].cex_depth == 1

    def test_assumed_sets_recorded(self, counter4):
        report = ja_verify(counter4)
        assert report.outcomes["P0"].assumed == ["P1"]
        assert report.outcomes["P1"].assumed == ["P0"]


class TestAgainstGroundTruth:
    def test_debugging_sets_match_explicit_semantics(self):
        for seed in range(50):
            ts = TransitionSystem(random_design(seed))
            gt = ProjectedReachability(ts)
            report = ja_verify(ts)
            assert not report.unsolved(), seed
            assert report.debugging_set() == sorted(gt.debugging_set()), seed

    def test_both_lifting_modes_agree(self):
        for seed in range(25):
            ts = TransitionSystem(random_design(seed))
            fast = ja_verify(ts, JAOptions(respect_constraints_in_lifting=False))
            slow = ja_verify(ts, JAOptions(respect_constraints_in_lifting=True))
            assert fast.debugging_set() == slow.debugging_set(), seed

    def test_spurious_reruns_happen_and_are_corrected(self):
        # Across many random designs, ignore-mode lifting must trigger at
        # least one spurious re-run, and the final verdicts still match.
        total_reruns = 0
        for seed in range(50):
            ts = TransitionSystem(random_design(seed))
            report = ja_verify(ts)
            total_reruns += int(report.stats["spurious_reruns"])
        assert total_reruns > 0

    def test_clause_reuse_does_not_change_verdicts(self):
        for seed in range(30):
            ts = TransitionSystem(random_design(seed))
            with_reuse = ja_verify(ts, JAOptions(clause_reuse=True))
            without = ja_verify(ts, JAOptions(clause_reuse=False))
            for name in with_reuse.outcomes:
                assert (
                    with_reuse.outcomes[name].status
                    == without.outcomes[name].status
                ), (seed, name)


class TestSimultaneousFailure:
    def test_both_properties_in_debugging_set(self):
        # Properties that only fail together must BOTH fail locally
        # (Proposition 5 corner case; see tests/ts/test_projection.py).
        aig = AIG()
        x = aig.add_input("x")
        q = aig.add_latch("q", init=0)
        aig.set_next(q, x)
        aig.add_property("A", aig_not(q))
        aig.add_property("B", aig_not(q))
        report = ja_verify(TransitionSystem(aig))
        assert report.debugging_set() == ["A", "B"]


class TestETF:
    @staticmethod
    def _design_with_etf():
        # An ETF property (reachability goal) plus an ETH property that
        # fails only after the ETF one does.
        aig = AIG()
        x = aig.add_input("x")
        q = aig.add_latch("q", init=0)  # becomes 1 when x pulses
        aig.set_next(q, aig.or_(q, x))
        r = aig.add_latch("r", init=0)  # follows q one cycle later
        aig.set_next(r, q)
        aig.add_property("etf_q_reachable", aig_not(q), expected_to_fail=True)
        aig.add_property("eth_r_stays_0", aig_not(r))
        return TransitionSystem(aig)

    def test_etf_not_assumed(self):
        ts = self._design_with_etf()
        report = ja_verify(ts)
        # The ETH property fails only after the ETF property has failed;
        # because ETF properties are never assumed, the ETH failure must
        # still be found (excluding those traces would be "a mistake").
        assert report.outcomes["eth_r_stays_0"].status is PropStatus.FAILS
        assert report.outcomes["etf_q_reachable"].status is PropStatus.FAILS

    def test_etf_failures_not_in_debugging_set(self):
        ts = self._design_with_etf()
        report = ja_verify(ts)
        assert report.debugging_set() == ["eth_r_stays_0"]
        assert report.etf_confirmed() == ["etf_q_reachable"]

    def test_etf_unconfirmed_warning(self):
        # An ETF property that actually holds: the narrative must warn.
        from repro.multiprop.debugging import debugging_report

        aig = AIG()
        q = aig.add_latch("q", init=0)
        aig.set_next(q, q)  # q can never rise
        aig.add_property("etf_unreachable", aig_not(q), expected_to_fail=True)
        aig.add_property("eth_fine", aig_not(q))
        report = debugging_report(ja_verify(TransitionSystem(aig)))
        assert report.etf_unconfirmed == ["etf_unreachable"]
        assert "WARNING" in report.narrative()

    def test_etf_cex_respects_eth_assumptions(self):
        # When solving the ETF property, ETH properties are assumed: the
        # CEX for the ETF property must not break any ETH property first.
        ts = self._design_with_etf()
        verifier = JAVerifier(ts)
        report = verifier.run()
        cex = verifier.results["etf_q_reachable"].cex
        eth = {"eth_r_stays_0": ts.prop_by_name["eth_r_stays_0"].lit}
        frame, _ = cex.first_failures(ts.aig, eth)
        assert frame is None or frame >= len(cex) - 1


class TestOptions:
    def test_order_override(self, counter4):
        report = ja_verify(counter4, JAOptions(order=["P1", "P0"]))
        assert set(report.outcomes) == {"P0", "P1"}

    def test_bad_order_rejected(self, counter4):
        with pytest.raises(KeyError):
            ja_verify(counter4, JAOptions(order=["nope"]))

    def test_per_property_budget_gives_unknown(self):
        aig = AIG()
        guarded_counter_slice(aig, "s", 6, 2, [20, 30])
        ts = TransitionSystem(aig)
        report = ja_verify(ts, JAOptions(per_property_time=0.0))
        assert report.unsolved()

    def test_total_time_budget(self, counter4):
        report = ja_verify(counter4, JAOptions(total_time=0.0))
        assert len(report.unsolved()) == 2

    def test_clause_db_persisted(self, counter4, tmp_path):
        path = str(tmp_path / "clauses.db")
        verifier = JAVerifier(counter4, JAOptions(clause_db_path=path))
        verifier.run()
        from repro.multiprop.clausedb import ClauseDB

        db = ClauseDB.load(path, counter4)
        assert len(db) == len(verifier.clause_db)


class TestGuardedSliceStructure:
    def test_guard_in_debug_set_dependents_locally_true(self):
        aig = AIG()
        names = guarded_counter_slice(aig, "s", 4, 2, [3, 5])
        ts = TransitionSystem(aig)
        report = ja_verify(ts)
        assert report.debugging_set() == ["s_G"]
        for name in names:
            if name != "s_G":
                assert report.outcomes[name].status is PropStatus.HOLDS

    def test_ring_all_true(self):
        aig = AIG()
        names = token_ring_slice(aig, "r", 5)
        report = ja_verify(TransitionSystem(aig))
        assert not report.debugging_set()
        assert report.true_props() == sorted(names)
