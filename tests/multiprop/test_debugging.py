"""Tests for debugging-set analysis and Proposition 6 checking."""

from __future__ import annotations

from repro.engines.bmc import bmc_check
from repro.gen.random_designs import random_design
from repro.multiprop.debugging import (
    check_proposition6,
    debugging_report,
)
from repro.multiprop.ja import ja_verify
from repro.ts.system import TransitionSystem


class TestDebuggingReport:
    def test_counter_report(self, counter4):
        report = debugging_report(ja_verify(counter4))
        assert report.debugging_set == ["P0"]
        assert report.locally_true == ["P1"]
        assert not report.unsolved
        assert not report.all_hold
        assert "P0" in report.narrative()

    def test_all_hold_narrative(self, toggler):
        # Restrict to the true property only.
        ts = TransitionSystem(toggler.aig, properties=[toggler.properties[0]])
        report = debugging_report(ja_verify(ts))
        assert report.all_hold
        assert "Proposition 5" in report.narrative()

    def test_cex_depths_recorded(self, counter4):
        report = debugging_report(ja_verify(counter4))
        assert report.cex_depths["P0"] == 1


class TestProposition6:
    def test_on_counter(self, counter4):
        # Find a CEX for the aggregate property via BMC on P0 (the
        # shallowest failure) and check it against the debugging set.
        ja = ja_verify(counter4)
        debug_set = ja.debugging_set()
        cex = bmc_check(counter4, "P0", max_depth=4).cex
        assert check_proposition6(counter4, debug_set, cex)

    def test_on_random_designs(self):
        # Every engine-found CEX for any property, interpreted as an
        # aggregate CEX, must point at the debugging set per Prop. 6.
        checked = 0
        for seed in range(30):
            ts = TransitionSystem(random_design(seed))
            ja = ja_verify(ts)
            debug_set = ja.debugging_set()
            if not debug_set:
                continue
            for prop in ts.properties:
                result = bmc_check(ts, prop.name, max_depth=12)
                if result.cex is None:
                    continue
                assert check_proposition6(ts, debug_set, result.cex), (
                    seed,
                    prop.name,
                )
                checked += 1
        assert checked > 10

    def test_trace_failing_nothing_is_vacuous(self, counter4):
        from repro.ts.trace import Trace

        enable, req = counter4.aig.inputs
        trace = Trace(inputs=[{enable: False, req: True}])
        assert check_proposition6(counter4, [], trace)
