"""Tests for the simulated parallel scheduler (Section 11)."""

from __future__ import annotations

import pytest

from repro.gen.families import huge_design
from repro.multiprop.parallel import (
    ParallelSimResult,
    measure_global_proofs,
    measure_local_proofs,
)
from repro.ts.system import TransitionSystem


class TestMakespan:
    def _result(self, times):
        r = ParallelSimResult()
        r.prop_times = {f"p{i}": t for i, t in enumerate(times)}
        return r

    def test_single_worker_is_sequential(self):
        r = self._result([1.0, 2.0, 3.0])
        assert r.makespan(1) == pytest.approx(6.0)
        assert r.speedup(1) == pytest.approx(1.0)

    def test_enough_workers_bounded_by_longest_job(self):
        r = self._result([1.0, 2.0, 3.0])
        assert r.makespan(3) == pytest.approx(3.0)
        assert r.makespan(100) == pytest.approx(3.0)

    def test_greedy_balancing(self):
        r = self._result([4.0, 3.0, 2.0, 1.0])
        assert r.makespan(2) == pytest.approx(5.0)

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError):
            self._result([1.0]).makespan(0)

    def test_empty_result(self):
        r = self._result([])
        assert r.makespan(4) == 0.0
        assert r.speedup(4) >= 1.0


class TestMeasurement:
    def test_local_proofs_flat_global_grows(self):
        # Table X's two claims on the 6s289 stand-in.
        ts = TransitionSystem(huge_design(chain_depth=24))
        sample = ["c0_C2", "c0_C12", "c0_C23"]
        local = measure_local_proofs(ts, sample)
        glob = measure_global_proofs(ts, sample)
        assert all(s == "holds" for s in local.statuses.values())
        assert all(s == "holds" for s in glob.statuses.values())
        # Local frame counts are flat and small.
        assert max(local.prop_frames.values()) <= 3
        # Global work grows along the chain — compared in SAT queries,
        # the deterministic work measure (millisecond wall-clock pairs
        # flake under scheduler noise on loaded hosts).
        assert glob.prop_queries["c0_C23"] > 4 * local.prop_queries["c0_C23"]
        assert glob.prop_queries["c0_C23"] > glob.prop_queries["c0_C2"]

    def test_speedup_increases_with_workers(self):
        ts = TransitionSystem(huge_design(chain_depth=16))
        sample = [f"c0_C{i}" for i in range(0, 16, 2)]
        local = measure_local_proofs(ts, sample)
        assert local.speedup(8) >= local.speedup(2) >= local.speedup(1)
        assert local.speedup(1) == pytest.approx(1.0)
