"""Tests for the strengthening-clause database."""

from __future__ import annotations

import pytest

from repro.circuit.aig import AIG, aig_not
from repro.multiprop.clausedb import ClauseDB
from repro.ts.system import TransitionSystem


def _system(n_latches=3):
    aig = AIG()
    latches = []
    for i in range(n_latches):
        q = aig.add_latch(f"q{i}", init=0)
        aig.set_next(q, q)
        latches.append(q)
    aig.add_property("p", aig_not(latches[0]))
    return TransitionSystem(aig)


class TestAdd:
    def test_add_and_snapshot(self):
        db = ClauseDB(_system())
        assert db.add([-1, 2])
        assert db.clauses() == [(-1, 2)]

    def test_duplicates_rejected(self):
        db = ClauseDB(_system())
        assert db.add([-1, 2])
        assert not db.add([2, -1])  # same clause, different order
        assert db.stats["duplicates"] == 1
        assert len(db) == 1

    def test_init_violating_clause_rejected(self):
        db = ClauseDB(_system())
        # Clause (1,) says latch q0 is TRUE, but q0 initializes to 0.
        assert not db.add([1])
        assert db.stats["rejected"] == 1

    def test_out_of_range_variable_rejected(self):
        db = ClauseDB(_system(2))
        assert not db.add([-5])

    def test_contradictory_clause_rejected(self):
        db = ClauseDB(_system())
        assert not db.add([1, -1])

    def test_empty_clause_rejected(self):
        db = ClauseDB(_system())
        assert not db.add([])

    def test_add_all_counts_new(self):
        db = ClauseDB(_system())
        added = db.add_all([[-1], [-2], [-1], [3, -1]])
        assert added == 3


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        ts = _system()
        db = ClauseDB(ts)
        db.add([-1, 2])
        db.add([-2, -3])
        path = str(tmp_path / "clauses.db")
        db.save(path)
        loaded = ClauseDB.load(path, ts)
        assert loaded.clauses() == db.clauses()

    def test_load_rejects_wrong_design(self, tmp_path):
        db = ClauseDB(_system(3))
        db.add([-1])
        path = str(tmp_path / "clauses.db")
        db.save(path)
        with pytest.raises(ValueError):
            ClauseDB.load(path, _system(4))

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "junk.db"
        path.write_text("not a clausedb\n")
        with pytest.raises(ValueError):
            ClauseDB.load(str(path), _system())

    def test_load_validates_clauses(self, tmp_path):
        # Hand-craft a file with one valid and one init-violating clause.
        ts = _system()
        path = tmp_path / "clauses.db"
        names = " ".join(latch.name for latch in ts.latches)
        path.write_text(f"clausedb 1\n{names}\n-1 2\n1\n")
        loaded = ClauseDB.load(str(path), ts)
        assert loaded.clauses() == [(-1, 2)]
        assert loaded.stats["rejected"] == 1
