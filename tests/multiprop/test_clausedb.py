"""Tests for the strengthening-clause database."""

from __future__ import annotations

import pytest

from repro.circuit.aig import AIG, aig_not
from repro.multiprop.clausedb import (
    CLAUSEDB_MAGIC,
    CLAUSEDB_VERSION,
    ClauseDB,
    ClauseDBFormatError,
)
from repro.ts.system import TransitionSystem


def _system(n_latches=3):
    aig = AIG()
    latches = []
    for i in range(n_latches):
        q = aig.add_latch(f"q{i}", init=0)
        aig.set_next(q, q)
        latches.append(q)
    aig.add_property("p", aig_not(latches[0]))
    return TransitionSystem(aig)


class TestAdd:
    def test_add_and_snapshot(self):
        db = ClauseDB(_system())
        assert db.add([-1, 2])
        assert db.clauses() == [(-1, 2)]

    def test_duplicates_rejected(self):
        db = ClauseDB(_system())
        assert db.add([-1, 2])
        assert not db.add([2, -1])  # same clause, different order
        assert db.stats["duplicates"] == 1
        assert len(db) == 1

    def test_init_violating_clause_rejected(self):
        db = ClauseDB(_system())
        # Clause (1,) says latch q0 is TRUE, but q0 initializes to 0.
        assert not db.add([1])
        assert db.stats["rejected"] == 1

    def test_out_of_range_variable_rejected(self):
        db = ClauseDB(_system(2))
        assert not db.add([-5])

    def test_contradictory_clause_rejected(self):
        db = ClauseDB(_system())
        assert not db.add([1, -1])

    def test_empty_clause_rejected(self):
        db = ClauseDB(_system())
        assert not db.add([])

    def test_add_all_counts_new(self):
        db = ClauseDB(_system())
        added = db.add_all([[-1], [-2], [-1], [3, -1]])
        assert added == 3


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        ts = _system()
        db = ClauseDB(ts)
        db.add([-1, 2])
        db.add([-2, -3])
        path = str(tmp_path / "clauses.db")
        db.save(path)
        loaded = ClauseDB.load(path, ts)
        assert loaded.clauses() == db.clauses()

    def test_load_rejects_wrong_design(self, tmp_path):
        db = ClauseDB(_system(3))
        db.add([-1])
        path = str(tmp_path / "clauses.db")
        db.save(path)
        with pytest.raises(ValueError):
            ClauseDB.load(path, _system(4))

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "junk.db"
        path.write_text("not a clausedb\n")
        with pytest.raises(ValueError):
            ClauseDB.load(str(path), _system())

    def test_load_validates_clauses(self, tmp_path):
        # Hand-craft a file with one valid and one init-violating clause.
        ts = _system()
        path = tmp_path / "clauses.db"
        names = " ".join(latch.name for latch in ts.latches)
        path.write_text(f"clausedb 1\n{names}\n-1 2\n1\n")
        loaded = ClauseDB.load(str(path), ts)
        assert loaded.clauses() == [(-1, 2)]
        assert loaded.stats["rejected"] == 1


class TestFormatVersioning:
    def test_dumps_stamps_current_version(self):
        db = ClauseDB(_system())
        db.add([-1, 2])
        text = db.dumps()
        assert text.splitlines()[0] == f"{CLAUSEDB_MAGIC} {CLAUSEDB_VERSION}"

    def test_dumps_loads_round_trip(self):
        ts = _system()
        db = ClauseDB(ts)
        db.add([-1, 2])
        db.add([-3])
        assert ClauseDB.loads(db.dumps(), ts).clauses() == db.clauses()

    def test_v1_files_still_load(self):
        ts = _system()
        names = " ".join(latch.name for latch in ts.latches)
        loaded = ClauseDB.loads(f"clausedb 1\n{names}\n-1 2\n", ts)
        assert loaded.clauses() == [(-1, 2)]

    def test_unknown_version_rejected(self):
        ts = _system()
        names = " ".join(latch.name for latch in ts.latches)
        with pytest.raises(ClauseDBFormatError):
            ClauseDB.loads(f"clausedb 99\n{names}\n-1\n", ts)

    def test_bad_magic_rejected(self):
        with pytest.raises(ClauseDBFormatError):
            ClauseDB.loads("clauselog 2\nq0 q1 q2\n-1\n", _system())

    def test_missing_version_rejected(self):
        with pytest.raises(ClauseDBFormatError):
            ClauseDB.loads("clausedb\nq0 q1 q2\n-1\n", _system())

    def test_format_error_is_a_value_error(self, tmp_path):
        # Callers that predate the typed error still catch ValueError.
        assert issubclass(ClauseDBFormatError, ValueError)
        path = tmp_path / "junk.db"
        path.write_text("clausedb nine\nq0 q1 q2\n")
        with pytest.raises(ClauseDBFormatError):
            ClauseDB.load(str(path), _system())
