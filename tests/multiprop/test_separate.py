"""Tests for separate verification with global proofs."""

from __future__ import annotations

from repro.engines.result import PropStatus
from repro.gen.random_designs import random_design
from repro.multiprop.separate import SeparateOptions, separate_verify
from repro.ts.projection import ProjectedReachability
from repro.ts.system import TransitionSystem


class TestExample1:
    def test_both_properties_fail_globally(self, counter4):
        report = separate_verify(counter4)
        assert report.false_props() == ["P0", "P1"]
        assert report.outcomes["P0"].cex_depth == 1
        assert report.outcomes["P1"].cex_depth == 10

    def test_verdicts_are_global(self, counter4):
        report = separate_verify(counter4)
        assert all(not o.local for o in report.outcomes.values())


class TestAgainstGroundTruth:
    def test_matches_explicit_semantics(self):
        for seed in range(35):
            ts = TransitionSystem(random_design(seed))
            gt = ProjectedReachability(ts)
            report = separate_verify(ts)
            assert not report.unsolved(), seed
            expected = sorted(
                p.name for p in ts.properties if gt.fails_globally(p.name)
            )
            assert report.false_props() == expected, seed

    def test_reuse_does_not_change_verdicts(self):
        for seed in range(25):
            ts = TransitionSystem(random_design(seed))
            with_reuse = separate_verify(ts, SeparateOptions(clause_reuse=True))
            without = separate_verify(ts, SeparateOptions(clause_reuse=False))
            for name in with_reuse.outcomes:
                assert (
                    with_reuse.outcomes[name].status == without.outcomes[name].status
                ), (seed, name)

    def test_agrees_with_ja_on_correct_designs(self):
        # On designs where nothing fails, local and global verdicts match.
        from repro.multiprop.ja import ja_verify

        for seed in range(30):
            ts = TransitionSystem(random_design(seed))
            sep = separate_verify(ts)
            if sep.false_props():
                continue
            ja = ja_verify(ts)
            assert ja.true_props() == sep.true_props(), seed


class TestBudgets:
    def test_per_property_conflicts(self):
        ts = TransitionSystem(random_design(0))
        report = separate_verify(ts, SeparateOptions(per_property_conflicts=0))
        # Tiny designs may still solve within the first unbudgeted query;
        # the run must at least terminate with a verdict for everything.
        assert len(report.outcomes) == len(ts.properties)

    def test_total_time_zero(self, counter4):
        report = separate_verify(counter4, SeparateOptions(total_time=0.0))
        assert len(report.unsolved()) == 2

    def test_order_respected(self, counter4):
        report = separate_verify(counter4, SeparateOptions(order=["P1", "P0"]))
        assert list(report.outcomes) == ["P1", "P0"]
