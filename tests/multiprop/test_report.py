"""Tests for report aggregation and table rendering."""

from __future__ import annotations

from repro.engines.result import PropStatus
from repro.multiprop.report import (
    MultiPropReport,
    PropOutcome,
    format_time,
    render_table,
)


def _report():
    report = MultiPropReport(method="ja", design="d")
    report.outcomes["a"] = PropOutcome("a", PropStatus.FAILS, local=True, cex_depth=3)
    report.outcomes["b"] = PropOutcome("b", PropStatus.HOLDS, local=True)
    report.outcomes["c"] = PropOutcome("c", PropStatus.UNKNOWN, local=True)
    report.outcomes["d"] = PropOutcome("d", PropStatus.FAILS, local=False)
    report.total_time = 1.5
    return report


class TestReport:
    def test_partitions(self):
        report = _report()
        assert report.false_props() == ["a", "d"]
        assert report.true_props() == ["b"]
        assert [o.name for o in report.unsolved()] == ["c"]
        assert len(report.solved()) == 3
        assert report.num_props == 4

    def test_debugging_set_only_local_failures(self):
        assert _report().debugging_set() == ["a"]

    def test_summary_mentions_counts(self):
        text = _report().summary()
        assert "2 false" in text and "1 true" in text and "1 unsolved" in text


class TestFormatTime:
    def test_seconds(self):
        assert format_time(2.5) == "2.50 s"

    def test_large_seconds(self):
        assert format_time(723) == "723 s"

    def test_hours(self):
        assert format_time(9000) == "2.5 h"


class TestRenderTable:
    def test_alignment_and_content(self):
        text = render_table(
            "Table T", ["name", "time"], [["x", "1 s"], ["longer", "2 s"]]
        )
        lines = text.splitlines()
        assert lines[0] == "Table T"
        assert "name" in lines[1] and "time" in lines[1]
        assert lines[2].count("-") > 5
        assert "longer" in text

    def test_note_line(self):
        text = render_table("T", ["a"], [["1"]], note="scaled down")
        assert "scaled down" in text.splitlines()[1]
