"""Tests for the COI front end and CTG generalization inside JA-verification."""

from __future__ import annotations

from repro.engines.ic3 import IC3Options, ic3_check
from repro.gen.counter import buggy_counter
from repro.gen.random_designs import random_design
from repro.multiprop.ja import JAOptions, ja_verify
from repro.ts.projection import ProjectedReachability
from repro.ts.system import TransitionSystem


class TestCoiJA:
    def test_verdicts_unchanged_on_random_designs(self):
        for seed in range(40):
            ts = TransitionSystem(random_design(seed))
            gt = ProjectedReachability(ts)
            report = ja_verify(ts, JAOptions(coi_reduction=True))
            assert not report.unsolved(), seed
            assert report.debugging_set() == sorted(gt.debugging_set()), seed

    def test_example1_input_coupling_preserved(self):
        # P0 and P1 interact only through the `req` input; the COI fixpoint
        # must keep P0 as an assumption when reducing for P1.
        ts = TransitionSystem(buggy_counter(5))
        report = ja_verify(ts, JAOptions(coi_reduction=True))
        assert report.debugging_set() == ["P0"]
        assert report.true_props() == ["P1"]
        assert report.outcomes["P1"].assumed == ["P0"]

    def test_coi_prunes_disjoint_designs(self):
        # On a design of disjoint slices, each local proof sees only its
        # own slice: far fewer SAT queries than the whole-design run.
        from repro.circuit.aig import AIG
        from repro.gen.blocks import hold_slice, lfsr_ballast, token_ring_slice

        aig = AIG()
        lfsr_ballast(aig, "b", 30, 6)
        hold_slice(aig, "z", 8)
        token_ring_slice(aig, "r", 4)
        ts = TransitionSystem(aig)
        plain = ja_verify(ts)
        reduced = ja_verify(ts, JAOptions(coi_reduction=True))
        assert plain.true_props() == reduced.true_props()
        assert reduced.total_time <= plain.total_time

    def test_coi_cex_validates_on_original(self):
        from repro.multiprop.ja import JAVerifier

        for seed in range(15):
            ts = TransitionSystem(random_design(seed))
            verifier = JAVerifier(ts, JAOptions(coi_reduction=True))
            verifier.run()
            for name, result in verifier.results.items():
                if result.cex is not None:
                    prop = ts.prop_by_name[name]
                    assert result.cex.validate(ts.aig, prop.lit), (seed, name)

    def test_coi_invariants_translate_back(self):
        from repro.engines.certify import certify_invariant
        from repro.multiprop.ja import JAVerifier

        ts = TransitionSystem(buggy_counter(4))
        verifier = JAVerifier(ts, JAOptions(coi_reduction=True))
        verifier.run()
        result = verifier.results["P1"]
        assert result.holds
        report = certify_invariant(ts, "P1", result.invariant, assumed=("P0",))
        assert report.valid, report.reason


class TestCtg:
    def test_verdicts_unchanged(self):
        for seed in range(30):
            ts = TransitionSystem(random_design(seed))
            gt = ProjectedReachability(ts)
            for prop in ts.properties:
                result = ic3_check(ts, prop.name, IC3Options(ctg=True))
                assert not result.unknown
                assert result.fails == gt.fails_globally(prop.name), (seed, prop.name)

    def test_ctg_triggers_on_token_ring(self):
        # Token rings make generalization fail on counterexamples-to-
        # generalization; the CTG path must fire and block them.
        from repro.circuit.aig import AIG
        from repro.gen.blocks import token_ring_slice

        aig = AIG()
        names = token_ring_slice(aig, "r", 8)
        ts = TransitionSystem(aig)
        result = ic3_check(ts, names[0], IC3Options(ctg=True))
        assert result.holds
        assert result.stats.get("ctg_blocked", 0) > 0

    def test_ctg_with_ja(self, counter4):
        report = ja_verify(counter4, JAOptions(ctg=True))
        assert report.debugging_set() == ["P0"]
