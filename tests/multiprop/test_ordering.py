"""Tests for property-ordering heuristics."""

from __future__ import annotations

from repro.circuit.aig import AIG, aig_not
from repro.gen.blocks import good_chain_slice, token_ring_slice
from repro.multiprop.ja import JAOptions, ja_verify
from repro.multiprop.ordering import by_cone_size, design_order, shuffled
from repro.ts.system import TransitionSystem


def _mixed_design():
    aig = AIG()
    good_chain_slice(aig, "c", 4)
    token_ring_slice(aig, "r", 4)
    return TransitionSystem(aig)


class TestOrders:
    def test_design_order(self, counter4):
        assert design_order(counter4) == ["P0", "P1"]

    def test_by_cone_size_puts_small_cones_first(self):
        ts = _mixed_design()
        order = by_cone_size(ts)
        # c_C0 touches a single latch: it must come before ring props
        # (which see the whole 4-latch ring).
        assert order.index("c_C0") < order.index("r_X0")
        assert set(order) == {p.name for p in ts.properties}

    def test_shuffled_is_deterministic(self, counter4):
        assert shuffled(counter4, 7) == shuffled(counter4, 7)

    def test_shuffled_differs_by_seed(self):
        ts = _mixed_design()
        orders = {tuple(shuffled(ts, s)) for s in range(10)}
        assert len(orders) > 1

    def test_shuffled_is_permutation(self):
        ts = _mixed_design()
        assert sorted(shuffled(ts, 3)) == sorted(design_order(ts))


class TestOrderAffectsRunButNotVerdicts:
    def test_all_orders_same_verdicts(self):
        ts = _mixed_design()
        baseline = ja_verify(ts, JAOptions(order=design_order(ts)))
        for order in (by_cone_size(ts), shuffled(ts, 1), shuffled(ts, 2)):
            report = ja_verify(ts, JAOptions(order=list(order)))
            assert report.true_props() == baseline.true_props()
            assert report.debugging_set() == baseline.debugging_set()
