"""Tests for structure-aware property clustering (related-work baseline)."""

from __future__ import annotations

import pytest

from repro.circuit.aig import AIG
from repro.gen.blocks import hold_slice, token_ring_slice
from repro.gen.random_designs import random_design
from repro.multiprop.clustering import (
    ClusterOptions,
    cluster_properties,
    clustered_verify,
    jaccard,
)
from repro.multiprop.separate import separate_verify
from repro.ts.system import TransitionSystem


class TestJaccard:
    def test_identical(self):
        assert jaccard(frozenset({1, 2}), frozenset({1, 2})) == 1.0

    def test_disjoint(self):
        assert jaccard(frozenset({1}), frozenset({2})) == 0.0

    def test_partial(self):
        assert jaccard(frozenset({1, 2}), frozenset({2, 3})) == pytest.approx(1 / 3)

    def test_empty(self):
        assert jaccard(frozenset(), frozenset()) == 1.0


class TestClustering:
    def _design(self):
        aig = AIG()
        token_ring_slice(aig, "r", 4)  # 4 props, same cone
        hold_slice(aig, "z", 3)  # 3 props, disjoint cones
        return TransitionSystem(aig)

    def test_ring_props_cluster_together(self):
        ts = self._design()
        clusters = cluster_properties(ts, threshold=0.5)
        ring_cluster = next(c for c in clusters if c[0].startswith("r_"))
        assert len(ring_cluster) == 4

    def test_hold_props_stay_separate(self):
        ts = self._design()
        clusters = cluster_properties(ts, threshold=0.5)
        hold_clusters = [c for c in clusters if c[0].startswith("z_")]
        assert all(len(c) == 1 for c in hold_clusters)

    def test_threshold_zero_merges_everything(self):
        ts = self._design()
        clusters = cluster_properties(ts, threshold=0.0)
        assert len(clusters) == 1

    def test_covers_all_properties(self):
        ts = self._design()
        clusters = cluster_properties(ts)
        flattened = sorted(n for c in clusters for n in c)
        assert flattened == sorted(p.name for p in ts.properties)


class TestClusteredVerify:
    def test_matches_separate_verdicts(self):
        for seed in range(15):
            ts = TransitionSystem(random_design(seed))
            clustered = clustered_verify(ts)
            flat = separate_verify(ts)
            assert clustered.false_props() == flat.false_props(), seed
            assert not clustered.unsolved(), seed

    def test_inner_ja(self):
        # Cluster-local assumptions are a subset of full-JA assumptions,
        # so the verdict sets nest:
        #   full-JA debugging set ⊆ clustered-JA false ⊆ globally false.
        from repro.multiprop.ja import ja_verify

        for seed in range(8):
            ts = TransitionSystem(random_design(seed))
            report = clustered_verify(ts, ClusterOptions(inner="ja"))
            assert not report.unsolved(), seed
            flat = separate_verify(ts)
            full_ja = ja_verify(ts)
            assert set(full_ja.debugging_set()) <= set(report.false_props()), seed
            assert set(report.false_props()) <= set(flat.false_props()), seed

    def test_without_coi_reduction(self):
        ts = TransitionSystem(random_design(3))
        with_coi = clustered_verify(ts, ClusterOptions(use_coi_reduction=True))
        without = clustered_verify(ts, ClusterOptions(use_coi_reduction=False))
        assert with_coi.false_props() == without.false_props()

    def test_rejects_bad_inner(self):
        ts = TransitionSystem(random_design(0))
        with pytest.raises(ValueError):
            clustered_verify(ts, ClusterOptions(inner="magic"))

    def test_stats_report_clusters(self):
        ts = TransitionSystem(random_design(1))
        report = clustered_verify(ts)
        assert report.stats["clusters"] >= 1
        assert report.stats["largest_cluster"] >= 1
