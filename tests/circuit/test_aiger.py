"""Tests for AIGER ASCII serialization, including round-trip equivalence."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.aig import AIG, aig_not
from repro.circuit.aiger import parse_aag, write_aag
from repro.circuit.simulate import Simulator
from repro.gen.counter import buggy_counter
from repro.gen.random_designs import random_design


def _behaviours_equal(a: AIG, b: AIG, n_frames: int = 8, seeds=(0, 1, 2, 3, 4)) -> bool:
    """Compare property traces of two AIGs under common random stimuli."""
    import random

    if len(a.properties) != len(b.properties):
        return False
    for seed in seeds:
        rng = random.Random(seed)
        seq = [
            {inp: rng.random() < 0.5 for inp in a.inputs} for _ in range(n_frames)
        ]
        # Translate by input position (names/literals may differ).
        seq_b = [
            {b.inputs[i]: frame[a.inputs[i]] for i in range(len(a.inputs))}
            for frame in seq
        ]
        sim_a, sim_b = Simulator(a), Simulator(b)
        for frame_a, frame_b in zip(seq, seq_b):
            for pa, pb in zip(a.properties, b.properties):
                if sim_a.eval_lit(pa.lit, frame_a) != sim_b.eval_lit(pb.lit, frame_b):
                    return False
            sim_a.step(frame_a)
            sim_b.step(frame_b)
    return True


class TestWrite:
    def test_header_counts(self):
        aig = buggy_counter(4)
        text = write_aag(aig)
        header = text.splitlines()[0].split()
        assert header[0] == "aag"
        assert int(header[2]) == 2  # inputs
        assert int(header[3]) == 4  # latches
        assert int(header[4]) == 0  # outputs
        assert int(header[6]) == 2  # bad (properties)

    def test_symbol_table_has_property_names(self):
        text = write_aag(buggy_counter(4))
        assert "b0 P0" in text
        assert "b1 P1" in text

    def test_etf_flag_serialized(self):
        aig = AIG()
        x = aig.add_input("x")
        aig.add_latch("pad")
        aig.add_property("will_fail", x, expected_to_fail=True)
        text = write_aag(aig)
        assert "b0 will_fail etf" in text


class TestParse:
    def test_toggler(self):
        text = "aag 1 0 1 0 0 1\n2 3\n3\nb0 never\n"
        aig = parse_aag(text)
        assert len(aig.latches) == 1
        assert aig.properties[0].name == "never"

    def test_legacy_outputs_as_bad(self):
        # Pre-1.9 file: outputs double as bad literals.
        text = "aag 1 1 0 1 0\n2\n2\n"
        aig = parse_aag(text)
        assert len(aig.properties) == 1

    def test_latch_reset_values(self):
        text = "aag 3 0 3 0 0 1\n2 2 0\n4 4 1\n6 6 6\n7\n"
        aig = parse_aag(text)
        assert [l.init for l in aig.latches] == [0, 1, None]

    def test_rejects_binary_format(self):
        with pytest.raises(ValueError):
            parse_aag("aig 5 1 1 0 2\n")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            parse_aag("")

    def test_rejects_undefined_variable(self):
        with pytest.raises(ValueError):
            parse_aag("aag 2 1 0 1 0\n2\n4\n")


class TestRoundTrip:
    def test_counter_roundtrip(self):
        original = buggy_counter(4)
        recovered = parse_aag(write_aag(original))
        assert _behaviours_equal(original, recovered)
        assert [p.name for p in recovered.properties] == ["P0", "P1"]

    def test_etf_roundtrip(self):
        aig = AIG()
        x = aig.add_input("x")
        aig.add_latch("pad")
        aig.add_property("p", x, expected_to_fail=True)
        recovered = parse_aag(write_aag(aig))
        assert recovered.properties[0].expected_to_fail

    def test_constraint_roundtrip(self):
        aig = AIG()
        x = aig.add_input("x")
        q = aig.add_latch("q", init=0)
        aig.set_next(q, x)
        aig.add_property("p", aig_not(q))
        aig.add_constraint(aig_not(x))
        recovered = parse_aag(write_aag(aig))
        assert len(recovered.constraints) == 1

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_designs_roundtrip(self, seed):
        original = random_design(seed)
        recovered = parse_aag(write_aag(original))
        assert _behaviours_equal(original, recovered, n_frames=6, seeds=range(3))

    def test_double_roundtrip_is_stable(self):
        aig = random_design(1)
        once = write_aag(parse_aag(write_aag(aig)))
        twice = write_aag(parse_aag(once))
        assert once == twice
