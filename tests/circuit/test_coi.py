"""Tests for cone-of-influence reduction."""

from __future__ import annotations

import pytest

from repro.circuit.aig import AIG, aig_not
from repro.circuit.coi import coi_signature, reduce_to_cone, support_signature
from repro.engines.ic3 import ic3_check
from repro.gen.blocks import guarded_counter_slice, hold_slice, token_ring_slice
from repro.gen.counter import buggy_counter
from repro.gen.random_designs import random_design
from repro.ts.system import TransitionSystem


def _two_slices():
    aig = AIG()
    ring_names = token_ring_slice(aig, "r", 4)
    hold_names = hold_slice(aig, "z", 3)
    return aig, ring_names, hold_names


class TestReduce:
    def test_keeps_only_cone_latches(self):
        aig, ring_names, hold_names = _two_slices()
        reduction = reduce_to_cone(aig, [hold_names[0]])
        assert len(reduction.aig.latches) == 1
        assert reduction.aig.latches[0].name == "z_z0"
        assert reduction.kept_properties == [hold_names[0]]

    def test_ring_cone_keeps_whole_ring(self):
        aig, ring_names, _ = _two_slices()
        reduction = reduce_to_cone(aig, [ring_names[0]])
        assert len(reduction.aig.latches) == 4
        assert all(l.name.startswith("r_") for l in reduction.aig.latches)

    def test_preserves_init_and_names(self):
        aig = buggy_counter(4)
        reduction = reduce_to_cone(aig, ["P1"])
        originals = {l.name: l.init for l in aig.latches}
        for latch in reduction.aig.latches:
            assert originals[latch.name] == latch.init

    def test_unknown_property_rejected(self):
        aig, _, _ = _two_slices()
        with pytest.raises(KeyError):
            reduce_to_cone(aig, ["nope"])

    def test_verdicts_transfer(self):
        # The reduced design gives the same verdict as the full one.
        for seed in range(20):
            aig = random_design(seed)
            ts = TransitionSystem(aig)
            for prop in ts.properties:
                full = ic3_check(ts, prop.name)
                reduction = reduce_to_cone(aig, [prop.name])
                sub = TransitionSystem(reduction.aig)
                reduced = ic3_check(sub, prop.name)
                assert full.status == reduced.status, (seed, prop.name)

    def test_cex_translates_back(self):
        aig = AIG()
        guarded_counter_slice(aig, "s", 3, 1, [2])
        hold_slice(aig, "z", 2)
        reduction = reduce_to_cone(aig, ["s_G"])
        sub = TransitionSystem(reduction.aig)
        result = ic3_check(sub, "s_G")
        assert result.fails
        original_inputs = reduction.translate_inputs_back(result.cex.inputs)
        from repro.ts.trace import Trace

        trace = Trace(inputs=original_inputs)
        prop = TransitionSystem(aig).prop_by_name["s_G"]
        assert trace.validate(aig, prop.lit)


class TestSignatures:
    def test_disjoint_slices_disjoint_signatures(self):
        aig, ring_names, hold_names = _two_slices()
        props = {p.name: p for p in aig.properties}
        ring_sig = coi_signature(aig, props[ring_names[0]])
        hold_sig = coi_signature(aig, props[hold_names[0]])
        assert not ring_sig & hold_sig

    def test_support_includes_inputs(self):
        aig = buggy_counter(4)
        p0 = aig.properties[0]  # req == 1: cone has no latches
        assert not coi_signature(aig, p0)
        support = support_signature(aig, p0.lit)
        assert support  # contains the req input

    def test_shared_input_couples_properties(self):
        # Example 1: P0 and P1 overlap through the req input only.
        aig = buggy_counter(4)
        s0 = support_signature(aig, aig.properties[0].lit)
        s1 = support_signature(aig, aig.properties[1].lit)
        assert s0 & s1
