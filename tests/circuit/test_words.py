"""Property-based tests of word-level circuit builders against integers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.aig import AIG
from repro.circuit.simulate import Simulator
from repro.circuit import words


def _eval_word(aig: AIG, bits, inputs) -> int:
    sim = Simulator(aig)
    return words.word_value([sim.eval_lit(b, inputs) for b in bits])


def _eval_bit(aig: AIG, lit, inputs) -> bool:
    return Simulator(aig).eval_lit(lit, inputs)


def _input_word(aig: AIG, name: str, width: int):
    return [aig.add_input(f"{name}{i}") for i in range(width)]


def _assign(word_bits, value):
    return {bit: bool((value >> i) & 1) for i, bit in enumerate(word_bits)}


WIDTH = st.integers(min_value=1, max_value=6)


class TestConstWord:
    def test_value_roundtrip(self):
        assert words.word_value([True, False, False, True]) == 9

    def test_const_bits(self):
        assert words.const_word(5, 4) == [1, 0, 1, 0]  # TRUE,FALSE,TRUE,FALSE

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            words.const_word(16, 4)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            words.const_word(-1, 4)

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            words.const_word(0, 0)


@settings(max_examples=60, deadline=None)
@given(WIDTH, st.data())
def test_add_matches_integers(width, data):
    a = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    b = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    aig = AIG()
    wa = _input_word(aig, "a", width)
    wb = _input_word(aig, "b", width)
    out = words.add(aig, wa, wb)
    inputs = {**_assign(wa, a), **_assign(wb, b)}
    assert _eval_word(aig, out, inputs) == (a + b) % (1 << width)


@settings(max_examples=60, deadline=None)
@given(WIDTH, st.data())
def test_inc_matches_integers(width, data):
    a = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    aig = AIG()
    wa = _input_word(aig, "a", width)
    out = words.inc(aig, wa)
    assert _eval_word(aig, out, _assign(wa, a)) == (a + 1) % (1 << width)


@settings(max_examples=60, deadline=None)
@given(WIDTH, st.data())
def test_comparators_match_integers(width, data):
    a = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    b = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    aig = AIG()
    wa = _input_word(aig, "a", width)
    wb = _input_word(aig, "b", width)
    eq = words.eq(aig, wa, wb)
    lt = words.ult(aig, wa, wb)
    le = words.ule(aig, wa, wb)
    inputs = {**_assign(wa, a), **_assign(wb, b)}
    assert _eval_bit(aig, eq, inputs) == (a == b)
    assert _eval_bit(aig, lt, inputs) == (a < b)
    assert _eval_bit(aig, le, inputs) == (a <= b)


@settings(max_examples=40, deadline=None)
@given(WIDTH, st.data())
def test_const_comparators(width, data):
    a = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    c = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    aig = AIG()
    wa = _input_word(aig, "a", width)
    eqc = words.eq_const(aig, wa, c)
    lec = words.ule_const(aig, wa, c)
    inputs = _assign(wa, a)
    assert _eval_bit(aig, eqc, inputs) == (a == c)
    assert _eval_bit(aig, lec, inputs) == (a <= c)


@settings(max_examples=40, deadline=None)
@given(WIDTH, st.data())
def test_mux_word(width, data):
    a = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    b = data.draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    sel = data.draw(st.booleans())
    aig = AIG()
    s = aig.add_input("s")
    wa = _input_word(aig, "a", width)
    wb = _input_word(aig, "b", width)
    out = words.mux_word(aig, s, wa, wb)
    inputs = {**_assign(wa, a), **_assign(wb, b), s: sel}
    assert _eval_word(aig, out, inputs) == (a if sel else b)


class TestRegisters:
    def test_word_latches_init(self):
        aig = AIG()
        reg = words.word_latches(aig, "r", 4, init=5)
        inits = [aig.latch_by_lit(b).init for b in reg]
        assert inits == [1, 0, 1, 0]

    def test_set_next_word_width_mismatch(self):
        aig = AIG()
        reg = words.word_latches(aig, "r", 3)
        with pytest.raises(ValueError):
            words.set_next_word(aig, reg, [0, 0])

    def test_counter_counts(self):
        aig = AIG()
        reg = words.word_latches(aig, "r", 3, init=0)
        words.set_next_word(aig, reg, words.inc(aig, reg))
        sim = Simulator(aig)
        for expected in range(10):
            got = words.word_value([sim.state[b] for b in reg])
            assert got == expected % 8
            sim.step({})
