"""Tests for the binary AIGER (.aig) reader/writer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.aig import AIG, aig_not
from repro.circuit.aiger import parse_aag, write_aag
from repro.circuit.aiger_binary import (
    _decode_varint,
    _encode_varint,
    parse_aig_binary,
    write_aig_binary,
)
from repro.gen.counter import buggy_counter
from repro.gen.random_designs import random_design
from tests.circuit.test_aiger import _behaviours_equal


class TestVarints:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=1 << 40))
    def test_roundtrip(self, value):
        data = _encode_varint(value)
        decoded, pos = _decode_varint(data, 0)
        assert decoded == value
        assert pos == len(data)

    def test_known_encodings(self):
        assert _encode_varint(0) == b"\x00"
        assert _encode_varint(127) == b"\x7f"
        assert _encode_varint(128) == b"\x80\x01"

    def test_truncated_raises(self):
        with pytest.raises(ValueError):
            _decode_varint(b"\x80", 0)


class TestRoundTrip:
    def test_counter(self):
        original = buggy_counter(4)
        recovered = parse_aig_binary(write_aig_binary(original))
        assert _behaviours_equal(original, recovered)
        assert [p.name for p in recovered.properties] == ["P0", "P1"]

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_random_designs(self, seed):
        original = random_design(seed)
        recovered = parse_aig_binary(write_aig_binary(original))
        assert _behaviours_equal(original, recovered, n_frames=6, seeds=range(3))

    def test_binary_and_ascii_agree(self):
        aig = random_design(17)
        via_binary = parse_aig_binary(write_aig_binary(aig))
        via_ascii = parse_aag(write_aag(aig))
        assert _behaviours_equal(via_binary, via_ascii, n_frames=6, seeds=range(3))

    def test_etf_and_init_preserved(self):
        aig = AIG()
        x = aig.add_input("x")
        q = aig.add_latch("q", init=1)
        aig.set_next(q, x)
        u = aig.add_latch("u", init=None)
        aig.set_next(u, u)
        aig.add_property("goal", aig_not(q), expected_to_fail=True)
        recovered = parse_aig_binary(write_aig_binary(aig))
        assert [l.init for l in recovered.latches] == [1, None]
        assert recovered.properties[0].expected_to_fail

    def test_constraints_preserved(self):
        aig = AIG()
        x = aig.add_input("x")
        q = aig.add_latch("q", init=0)
        aig.set_next(q, x)
        aig.add_property("p", aig_not(q))
        aig.add_constraint(aig_not(x))
        recovered = parse_aig_binary(write_aig_binary(aig))
        assert len(recovered.constraints) == 1


class TestErrors:
    def test_rejects_ascii_file(self):
        with pytest.raises(ValueError):
            parse_aig_binary(b"aag 0 0 0 0 0\n")

    def test_rejects_missing_header(self):
        with pytest.raises(ValueError):
            parse_aig_binary(b"")
