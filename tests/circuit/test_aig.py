"""Unit tests for the AIG circuit model."""

from __future__ import annotations

import pytest

from repro.circuit.aig import AIG, FALSE_LIT, TRUE_LIT, aig_not, aig_var, is_negated


class TestLiterals:
    def test_not_flips_parity(self):
        assert aig_not(4) == 5
        assert aig_not(5) == 4

    def test_var_and_sign(self):
        assert aig_var(7) == 3
        assert is_negated(7)
        assert not is_negated(6)

    def test_constants(self):
        assert TRUE_LIT == aig_not(FALSE_LIT)


class TestSimplification:
    def setup_method(self):
        self.aig = AIG()
        self.a = self.aig.add_input("a")
        self.b = self.aig.add_input("b")

    def test_and_false_annihilates(self):
        assert self.aig.and_(self.a, FALSE_LIT) == FALSE_LIT

    def test_and_true_is_identity(self):
        assert self.aig.and_(self.a, TRUE_LIT) == self.a

    def test_and_idempotent(self):
        assert self.aig.and_(self.a, self.a) == self.a

    def test_and_complement_is_false(self):
        assert self.aig.and_(self.a, aig_not(self.a)) == FALSE_LIT

    def test_structural_hashing(self):
        g1 = self.aig.and_(self.a, self.b)
        g2 = self.aig.and_(self.b, self.a)  # commuted
        assert g1 == g2
        assert self.aig.stats()["ands"] == 1

    def test_or_demorgan(self):
        g = self.aig.or_(self.a, self.b)
        assert is_negated(g)

    def test_xor_of_equal_is_false(self):
        assert self.aig.xor(self.a, self.a) == FALSE_LIT

    def test_xor_of_complement_is_true(self):
        assert self.aig.xor(self.a, aig_not(self.a)) == TRUE_LIT

    def test_mux_constant_select(self):
        assert self.aig.mux(TRUE_LIT, self.a, self.b) == self.a
        assert self.aig.mux(FALSE_LIT, self.a, self.b) == self.b

    def test_implies(self):
        g = self.aig.implies(self.a, self.a)
        assert g == TRUE_LIT

    def test_and_many_empty_is_true(self):
        assert self.aig.and_many([]) == TRUE_LIT

    def test_or_many_empty_is_false(self):
        assert self.aig.or_many([]) == FALSE_LIT


class TestLatches:
    def test_latch_creation_and_next(self):
        aig = AIG()
        q = aig.add_latch("q", init=1)
        aig.set_next(q, aig_not(q))
        latch = aig.latch_by_lit(q)
        assert latch.init == 1
        assert latch.next == aig_not(q)
        assert latch.name == "q"

    def test_uninitialized_latch(self):
        aig = AIG()
        q = aig.add_latch("q", init=None)
        assert aig.latch_by_lit(q).init is None

    def test_bad_init_rejected(self):
        with pytest.raises(ValueError):
            AIG().add_latch("q", init=2)

    def test_set_next_rejects_inverted_target(self):
        aig = AIG()
        q = aig.add_latch("q")
        with pytest.raises(ValueError):
            aig.set_next(aig_not(q), q)

    def test_set_next_rejects_non_latch(self):
        aig = AIG()
        x = aig.add_input("x")
        with pytest.raises(ValueError):
            aig.set_next(x, x)


class TestProperties:
    def test_property_registration(self):
        aig = AIG()
        x = aig.add_input("x")
        prop = aig.add_property("p", x, expected_to_fail=True)
        assert prop.expected_to_fail
        assert aig.properties == [prop]

    def test_out_of_range_literal_rejected(self):
        aig = AIG()
        with pytest.raises(ValueError):
            aig.add_property("p", 9999)

    def test_constraints(self):
        aig = AIG()
        x = aig.add_input("x")
        aig.add_constraint(x)
        assert aig.constraints == [x]


class TestConeOfInfluence:
    def test_combinational_cone(self):
        aig = AIG()
        a, b, c = (aig.add_input(n) for n in "abc")
        g = aig.and_(a, b)
        nodes, latches = aig.cone_of_influence([g])
        assert aig_var(c) not in nodes
        assert not latches

    def test_cone_follows_latch_next(self):
        aig = AIG()
        x = aig.add_input("x")
        q1 = aig.add_latch("q1")
        q2 = aig.add_latch("q2")
        aig.set_next(q1, x)
        aig.set_next(q2, q1)
        _, latches = aig.cone_of_influence([q2])
        assert latches == {q1, q2}

    def test_disjoint_slices_have_disjoint_cones(self):
        aig = AIG()
        q1, q2 = aig.add_latch("q1"), aig.add_latch("q2")
        aig.set_next(q1, q1)
        aig.set_next(q2, q2)
        _, latches1 = aig.cone_of_influence([q1])
        _, latches2 = aig.cone_of_influence([q2])
        assert latches1 & latches2 == set()
