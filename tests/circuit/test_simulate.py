"""Unit tests for the concrete simulator."""

from __future__ import annotations

from repro.circuit.aig import AIG, aig_not
from repro.circuit.simulate import Simulator


class TestCombinational:
    def test_gates(self):
        aig = AIG()
        a, b = aig.add_input("a"), aig.add_input("b")
        g_and = aig.and_(a, b)
        g_or = aig.or_(a, b)
        g_xor = aig.xor(a, b)
        sim = Simulator(aig)
        for va in (False, True):
            for vb in (False, True):
                inputs = {a: va, b: vb}
                assert sim.eval_lit(g_and, inputs) == (va and vb)
                assert sim.eval_lit(g_or, inputs) == (va or vb)
                assert sim.eval_lit(g_xor, inputs) == (va != vb)

    def test_constants(self):
        aig = AIG()
        sim = Simulator(aig)
        assert sim.eval_lit(0, {}) is False
        assert sim.eval_lit(1, {}) is True

    def test_missing_inputs_default_false(self):
        aig = AIG()
        a = aig.add_input("a")
        sim = Simulator(aig)
        assert sim.eval_lit(a, {}) is False

    def test_deep_chain_no_recursion_error(self):
        aig = AIG()
        x = aig.add_input("x")
        lit = x
        other = aig.add_input("y")
        for _ in range(5000):
            lit = aig.and_(lit, other)
        sim = Simulator(aig)
        assert sim.eval_lit(lit, {x: True, other: True}) is True


class TestSequential:
    def test_toggler(self):
        aig = AIG()
        q = aig.add_latch("q", init=0)
        aig.set_next(q, aig_not(q))
        sim = Simulator(aig)
        values = []
        for _ in range(4):
            values.append(sim.state[q])
            sim.step({})
        assert values == [False, True, False, True]

    def test_reset_restores_init(self):
        aig = AIG()
        q = aig.add_latch("q", init=1)
        aig.set_next(q, 0)
        sim = Simulator(aig)
        sim.step({})
        assert sim.state[q] is False
        sim.reset()
        assert sim.state[q] is True

    def test_uninitialized_latch_values(self):
        aig = AIG()
        q = aig.add_latch("q", init=None)
        aig.set_next(q, q)
        sim = Simulator(aig)
        assert sim.state[q] is False  # default
        sim.reset({q: True})
        assert sim.state[q] is True

    def test_enabled_register(self):
        aig = AIG()
        en, d = aig.add_input("en"), aig.add_input("d")
        q = aig.add_latch("q", init=0)
        aig.set_next(q, aig.mux(en, d, q))
        sim = Simulator(aig)
        sim.step({en: False, d: True})
        assert sim.state[q] is False  # not enabled: holds
        sim.step({en: True, d: True})
        assert sim.state[q] is True

    def test_run_watches_literals(self):
        aig = AIG()
        q = aig.add_latch("q", init=0)
        aig.set_next(q, aig_not(q))
        sim = Simulator(aig)
        rows = sim.run([{}] * 3, watch=[q, aig_not(q)])
        assert [r[q] for r in rows] == [False, True, False]
        assert [r[aig_not(q)] for r in rows] == [True, False, True]


class TestPropertyFailure:
    def test_failure_frame(self):
        aig = AIG()
        q = aig.add_latch("q", init=0)
        aig.set_next(q, aig_not(q))
        prop = aig_not(q)  # fails when q first becomes 1, at frame 1
        sim = Simulator(aig)
        assert sim.check_property_failure([{}] * 5, prop) == 1

    def test_no_failure_returns_none(self):
        aig = AIG()
        q = aig.add_latch("q", init=0)
        aig.set_next(q, q)
        sim = Simulator(aig)
        assert sim.check_property_failure([{}] * 5, aig_not(q)) is None

    def test_input_dependent_property(self):
        aig = AIG()
        x = aig.add_input("x")
        aig.add_latch("pad", init=0)  # keep the design sequential
        sim = Simulator(aig)
        seq = [{x: True}, {x: True}, {x: False}]
        assert sim.check_property_failure(seq, x) == 2
