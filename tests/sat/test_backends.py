"""Backend conformance suite: every registered backend obeys the contract.

One parametrized module covers the whole registry, so a backend added
tomorrow is checked automatically:

* registry semantics (lookup, duplicate registration, env-var default);
* sat/differential checks against the brute-force enumerator;
* incremental semantics — clauses persist across solves, assumptions
  do not, activation-literal groups retract correctly, cores are
  sufficient;
* determinism: identical call sequences replay identically;
* strategy-verdict parity: every Session strategy must return the same
  verdicts under every backend.
"""

from __future__ import annotations

import random

import pytest

from repro.engines.ic3 import IC3Options, ic3_check
from repro.gen.random_designs import random_design
from repro.sat import (
    BACKEND_ENV_VAR,
    SatBackend,
    Solver,
    Status,
    UnknownBackendError,
    available_backends,
    create_solver,
    default_backend,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.session import Session
from repro.ts.system import TransitionSystem
from tests.conftest import brute_force_sat, random_cnf

BACKENDS = sorted(available_backends())


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
class TestRegistry:
    def test_builtin_backends_present(self):
        assert "cdcl" in BACKENDS and "cdcl-compact" in BACKENDS

    def test_descriptions_are_nonempty_one_liners(self):
        for name, description in available_backends().items():
            assert description and "\n" not in description, name

    def test_unknown_name_raises_with_candidates(self):
        with pytest.raises(UnknownBackendError) as exc:
            get_backend("no-such-solver")
        assert "cdcl" in str(exc.value)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_backend("cdcl")(Solver)

    def test_replace_and_unregister_roundtrip(self):
        class Custom(Solver):
            """A test-only backend."""

        register_backend("conformance-tmp")(Custom)
        try:
            assert get_backend("conformance-tmp") is Custom
            register_backend("conformance-tmp", replace=True)(Solver)
            assert get_backend("conformance-tmp") is Solver
        finally:
            unregister_backend("conformance-tmp")
        with pytest.raises(UnknownBackendError):
            get_backend("conformance-tmp")

    def test_default_backend_env_override(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert default_backend() == "cdcl"
        monkeypatch.setenv(BACKEND_ENV_VAR, "cdcl-compact")
        assert default_backend() == "cdcl-compact"
        assert isinstance(create_solver(), SatBackend)

    def test_default_backend_rejects_unknown_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "not-a-backend")
        with pytest.raises(UnknownBackendError):
            default_backend()


# ----------------------------------------------------------------------
# Solver-level conformance, parametrized over the registry
# ----------------------------------------------------------------------
@pytest.fixture(params=BACKENDS)
def backend(request) -> str:
    return request.param


class TestProtocol:
    def test_instance_satisfies_protocol(self, backend):
        assert isinstance(create_solver(backend), SatBackend)

    def test_stats_snapshot_counts_work(self, backend):
        solver = create_solver(backend)
        solver.add_clause([1, 2])
        solver.add_clause([-1, 2])
        before = solver.stats()
        assert before["clauses_added"] == 2
        assert solver.solve() is Status.SAT
        after = solver.stats()
        assert after["solves"] == before["solves"] + 1
        # stats() is a snapshot, not a live view.
        solver.add_clause([-2, 1])
        assert after["clauses_added"] == 2

    def test_differential_against_brute_force(self, backend):
        rng = random.Random(20260727)
        for _ in range(60):
            num_vars, clauses = random_cnf(rng)
            solver = create_solver(backend)
            ok = True
            for clause in clauses:
                ok = solver.add_clause(clause) and ok
            expected = brute_force_sat(num_vars, clauses)
            status = solver.solve() if ok else Status.UNSAT
            assert status in (Status.SAT, Status.UNSAT)
            assert (status is Status.SAT) == expected
            if status is Status.SAT:
                for clause in clauses:
                    assert any(solver.value(lit) for lit in clause)

    def test_determinism(self, backend):
        def run():
            rng = random.Random(7)
            transcript = []
            solver = create_solver(backend)
            for _ in range(30):
                num_vars, clauses = random_cnf(rng, max_vars=6, max_clauses=12)
                for clause in clauses:
                    solver.add_clause(clause)
                status = solver.solve()
                transcript.append((status, tuple(solver.model())))
                if status is Status.UNSAT:
                    solver = create_solver(backend)
            return transcript

        assert run() == run()


class TestIncrementalSemantics:
    def test_clauses_persist_across_solves(self, backend):
        solver = create_solver(backend)
        solver.add_clause([1, 2])
        assert solver.solve() is Status.SAT
        solver.add_clause([-1])
        assert solver.solve() is Status.SAT
        assert solver.value(2) is True
        solver.add_clause([-2])
        assert solver.solve() is Status.UNSAT

    def test_assumptions_do_not_persist(self, backend):
        solver = create_solver(backend)
        solver.add_clause([1, 2])
        assert solver.solve([-1, -2]) is Status.UNSAT
        assert solver.solve() is Status.SAT
        assert solver.solve([-1]) is Status.SAT
        assert solver.value(2) is True

    def test_core_is_sufficient_subset(self, backend):
        rng = random.Random(99)
        checked = 0
        while checked < 25:
            num_vars, clauses = random_cnf(rng, max_vars=6, max_clauses=20)
            solver = create_solver(backend)
            ok = all(solver.add_clause(c) for c in clauses)
            if not ok:
                continue
            assumptions = [
                rng.choice([-1, 1]) * v for v in range(1, num_vars + 1)
            ]
            if solver.solve(assumptions) is not Status.UNSAT:
                continue
            core = solver.core()
            assert core <= set(assumptions)
            # The core alone must keep the formula unsatisfiable.
            with_core = list(clauses) + [[lit] for lit in core]
            assert not brute_force_sat(num_vars, with_core)
            checked += 1

    def test_activation_group_retirement(self, backend):
        solver = create_solver(backend)
        solver.add_clause([1, 2])
        act = solver.new_activation()
        solver.add_clause([-act, -1])
        solver.add_clause([-act, -2])
        # Group enabled by assumption: forces both false -> UNSAT.
        assert solver.solve([act]) is Status.UNSAT
        assert act in {abs(lit) for lit in solver.core()}
        # Without the assumption the group is dormant.
        assert solver.solve() is Status.SAT
        solver.retire(act)
        # Retired: the group can never be re-enabled.
        assert solver.solve() is Status.SAT
        assert solver.value(1) or solver.value(2)
        assert solver.stats()["activations_retired"] == 1

    def test_many_activation_generations(self, backend):
        """IC3's usage pattern: guard, query, retire, repeat."""
        solver = create_solver(backend)
        solver.add_clause([1, 2, 3])
        for _ in range(50):
            act = solver.new_activation()
            solver.add_clause([-act, -1])
            solver.add_clause([-act, -2])
            solver.add_clause([-act, -3])
            assert solver.solve([act]) is Status.UNSAT
            assert solver.solve() is Status.SAT
            solver.retire(act)

    def test_retired_activation_variables_are_recycled(self, backend):
        """Variable and clause counts stay bounded over many guard/
        query/retire generations — the long-IC3-run compaction fix."""
        solver = create_solver(backend)
        solver.add_clause([1, 2, 3])
        base_vars = solver.num_vars
        base_clauses = solver.num_clauses()
        for _ in range(200):
            act = solver.new_activation()
            solver.add_clause([-act, -1])
            solver.add_clause([-act, -2])
            solver.add_clause([-act, -3])
            assert solver.solve([act]) is Status.UNSAT
            solver.retire(act)
        # One generation may be in flight; growth must not scale with
        # the generation count.
        assert solver.num_vars <= base_vars + 1
        assert solver.num_clauses() <= base_clauses + 3
        stats = solver.stats()
        assert stats["activations_retired"] == 200
        assert stats["activations_recycled"] == 199
        # The store stays sound after all that recycling.
        assert solver.solve() is Status.SAT

    def test_recycled_activation_group_is_independent(self, backend):
        """A recycled variable's new group must carry none of the old
        group's constraints (or their learned consequences)."""
        solver = create_solver(backend)
        solver.add_clause([1, 2])
        first = solver.new_activation()
        solver.add_clause([-first, -1])
        solver.add_clause([-first, -2])
        assert solver.solve([first]) is Status.UNSAT
        solver.retire(first)
        second = solver.new_activation()
        assert second == first  # the variable was recycled
        solver.add_clause([-second, -1])
        # The old group forced -2 as well; the new one must not.
        assert solver.solve([second]) is Status.SAT
        assert solver.value(2) is True

    def test_degenerate_unit_group_is_abandoned_not_recycled(self, backend):
        """A group clause that collapses to the unit ``[-act]`` pins the
        variable at root; it must never return to the free list."""
        solver = create_solver(backend)
        solver.add_clause([1])
        act = solver.new_activation()
        solver.add_clause([-act, -1])  # simplifies to [-act]: act := False
        solver.retire(act)
        replacement = solver.new_activation()
        assert replacement != act
        fresh = solver.new_var()
        solver.add_clause([-replacement, fresh])
        assert solver.solve([replacement]) is Status.SAT
        assert solver.value(fresh) is True

    def test_retirement_deletes_dependent_learnts(self, backend):
        """Learned clauses mentioning a retired activation variable are
        consequences of its group and must go with it: after recycling,
        solving under the fresh group of the same variable must not be
        poisoned by stale lemmas."""
        rng = random.Random(4242)
        for _ in range(15):
            num_vars, clauses = random_cnf(rng, max_vars=6, max_clauses=18)
            solver = create_solver(backend)
            ok = all(solver.add_clause(c) for c in clauses)
            if not ok:
                continue
            act = solver.new_activation()
            for v in range(1, num_vars + 1):
                solver.add_clause([-act, v if v % 2 else -v])
            solver.solve([act])  # may learn clauses mentioning -act
            solver.retire(act)
            # The base formula's satisfiability is untouched by the
            # retired group or its learned consequences.
            expected = brute_force_sat(num_vars, clauses)
            assert (solver.solve() is Status.SAT) == expected


# ----------------------------------------------------------------------
# Engine / strategy parity across backends
# ----------------------------------------------------------------------
class TestVerdictParity:
    @pytest.fixture(scope="class")
    def design(self):
        return TransitionSystem(random_design(seed=20260727, n_props=3))

    @pytest.mark.parametrize("strategy", ["ja", "joint", "separate", "clustered"])
    def test_strategy_verdicts_identical_across_backends(self, design, strategy):
        verdicts = {}
        for name in BACKENDS:
            report = Session(design, strategy=strategy, solver_backend=name).run()
            verdicts[name] = {n: o.status for n, o in report.outcomes.items()}
        reference = verdicts[BACKENDS[0]]
        assert reference, "design must have properties"
        for name in BACKENDS[1:]:
            assert verdicts[name] == reference, name

    def test_ic3_incremental_matches_rebuild_baseline(self, counter4, backend):
        """The persistent-solver engine and the rebuild-per-query
        baseline must agree on verdict and frame count — the benchmark
        relies on this equivalence to compare costs honestly — and the
        persistent engine must insert at least 2x fewer clauses on a
        multi-frame run (counter4's P1 needs a depth-10 trace)."""
        fast_insertions = slow_insertions = 0
        for prop in counter4.properties:
            fast = ic3_check(
                counter4, prop.name, IC3Options(solver_backend=backend)
            )
            slow = ic3_check(
                counter4,
                prop.name,
                IC3Options(solver_backend=backend, incremental=False),
            )
            assert fast.status is slow.status
            assert fast.frames == slow.frames
            fast_insertions += fast.stats["clause_insertions"]
            slow_insertions += slow.stats["clause_insertions"]
        assert fast_insertions * 2 <= slow_insertions

    def test_config_rejects_unknown_backend(self, design):
        from repro.session import ConfigError

        with pytest.raises(ConfigError):
            Session(design, strategy="ja", solver_backend="nope")
