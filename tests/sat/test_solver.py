"""Unit tests for the CDCL solver core."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat import Solver, Status, luby
from tests.conftest import brute_force_sat, random_cnf


class TestBasics:
    def test_empty_formula_is_sat(self):
        assert Solver().solve() == Status.SAT

    def test_unit_clause(self):
        s = Solver()
        assert s.add_clause([3])
        assert s.solve() == Status.SAT
        assert s.value(3) is True
        assert s.value(-3) is False

    def test_contradictory_units(self):
        s = Solver()
        assert s.add_clause([1])
        assert not s.add_clause([-1])
        assert s.solve() == Status.UNSAT
        assert not s.ok

    def test_tautology_is_dropped(self):
        s = Solver()
        assert s.add_clause([1, -1])
        assert s.num_clauses() == 0
        assert s.solve() == Status.SAT

    def test_duplicate_literals_collapse(self):
        s = Solver()
        assert s.add_clause([2, 2, 2])
        assert s.solve() == Status.SAT
        assert s.value(2) is True

    def test_empty_clause_rejected(self):
        s = Solver()
        assert not s.add_clause([])
        assert s.solve() == Status.UNSAT

    def test_model_satisfies_formula(self):
        s = Solver()
        clauses = [[1, 2], [-1, 3], [-2, -3], [2, 3]]
        for c in clauses:
            s.add_clause(c)
        assert s.solve() == Status.SAT
        for c in clauses:
            assert any(s.value(l) for l in c)

    def test_add_clause_after_solve(self):
        s = Solver()
        s.add_clause([1, 2])
        assert s.solve() == Status.SAT
        s.add_clause([-1])
        s.add_clause([-2])
        assert s.solve() == Status.UNSAT

    def test_new_var_indices_are_sequential(self):
        s = Solver()
        assert [s.new_var() for _ in range(3)] == [1, 2, 3]


class TestPigeonhole:
    @staticmethod
    def php(n_pigeons: int, n_holes: int) -> Solver:
        s = Solver()

        def var(p: int, h: int) -> int:
            return p * n_holes + h + 1

        for p in range(n_pigeons):
            s.add_clause([var(p, h) for h in range(n_holes)])
        for h in range(n_holes):
            for p1 in range(n_pigeons):
                for p2 in range(p1 + 1, n_pigeons):
                    s.add_clause([-var(p1, h), -var(p2, h)])
        return s

    def test_php_4_3_unsat(self):
        assert self.php(4, 3).solve() == Status.UNSAT

    def test_php_6_5_unsat(self):
        assert self.php(6, 5).solve() == Status.UNSAT

    def test_php_5_5_sat(self):
        assert self.php(5, 5).solve() == Status.SAT


class TestAssumptions:
    def test_failed_assumption_core(self):
        s = Solver()
        s.add_clause([-1, -2])
        assert s.solve([1, 2]) == Status.UNSAT
        core = s.core()
        assert core and core <= {1, 2}

    def test_solver_usable_after_assumption_unsat(self):
        s = Solver()
        s.add_clause([-1, -2])
        assert s.solve([1, 2]) == Status.UNSAT
        assert s.solve([1]) == Status.SAT
        assert s.value(2) is False
        assert s.solve([2]) == Status.SAT

    def test_assumption_conflicting_with_unit(self):
        s = Solver()
        s.add_clause([5])
        assert s.solve([-5]) == Status.UNSAT
        assert s.core() == frozenset({-5})

    def test_core_is_sufficient(self):
        # x1 & x2 -> conflict via chain; x3 irrelevant.
        s = Solver()
        s.add_clause([-1, 4])
        s.add_clause([-2, -4])
        assert s.solve([1, 2, 3]) == Status.UNSAT
        core = s.core()
        assert 3 not in core
        assert core <= {1, 2}

    def test_assumptions_dont_persist(self):
        s = Solver()
        s.add_clause([1, 2])
        assert s.solve([-1]) == Status.SAT
        assert s.value(2) is True
        assert s.solve([-2]) == Status.SAT
        assert s.value(1) is True


class TestBudgets:
    def test_conflict_budget_returns_unknown(self):
        s = TestPigeonhole.php(8, 7)
        s.set_budget(conflicts=5)
        assert s.solve() == Status.UNKNOWN

    def test_budget_resets_per_call(self):
        s = TestPigeonhole.php(4, 3)
        s.set_budget(conflicts=1)
        assert s.solve() == Status.UNKNOWN
        s.set_budget(conflicts=None)
        assert s.solve() == Status.UNSAT


class TestLuby:
    def test_prefix(self):
        assert [luby(2, i) for i in range(10)] == [1, 1, 2, 1, 1, 2, 4, 1, 1, 2]

    def test_scaling(self):
        assert luby(3.0, 2) == 3.0
        assert luby(3.0, 6) == 9.0


class TestRandomizedAgainstBruteForce:
    def test_random_instances(self):
        rng = random.Random(2024)
        for _ in range(400):
            num_vars, clauses = random_cnf(rng)
            s = Solver()
            ok = all(s.add_clause(c) for c in clauses)
            got = s.solve() if ok else Status.UNSAT
            expected = brute_force_sat(num_vars, clauses)
            assert (got == Status.SAT) == expected
            if got == Status.SAT:
                for c in clauses:
                    assert any(s.value(l) for l in c)

    def test_random_incremental_with_assumptions(self):
        rng = random.Random(77)
        for _ in range(150):
            num_vars, clauses = random_cnf(rng)
            s = Solver()
            ok = all(s.add_clause(c) for c in clauses)
            for _ in range(4):
                assumps = sorted(
                    {rng.choice([-1, 1]) * rng.randint(1, num_vars) for _ in range(rng.randint(0, 3))}
                )
                if not ok:
                    break
                got = s.solve(assumps)
                expected = brute_force_sat(
                    num_vars, list(clauses) + [[a] for a in assumps]
                )
                assert (got == Status.SAT) == expected
                if got == Status.UNSAT and assumps:
                    core = s.core()
                    assert core <= set(assumps)
                    assert not brute_force_sat(
                        num_vars, list(clauses) + [[a] for a in core]
                    )


@settings(max_examples=150, deadline=None)
@given(st.data())
def test_hypothesis_sat_matches_brute_force(data):
    """Property-based: solver verdict always matches exhaustive search."""
    num_vars = data.draw(st.integers(min_value=1, max_value=6))
    clauses = data.draw(
        st.lists(
            st.lists(
                st.integers(min_value=1, max_value=num_vars).flatmap(
                    lambda v: st.sampled_from([v, -v])
                ),
                min_size=1,
                max_size=3,
            ),
            min_size=0,
            max_size=20,
        )
    )
    s = Solver()
    ok = all(s.add_clause(c) for c in clauses)
    got = s.solve() if ok else Status.UNSAT
    assert (got == Status.SAT) == brute_force_sat(num_vars, clauses)
