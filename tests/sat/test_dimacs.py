"""Tests for DIMACS CNF I/O."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat import Solver, Status, dimacs_str, parse_dimacs


class TestParse:
    def test_basic(self):
        text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n"
        num_vars, clauses = parse_dimacs(text)
        assert num_vars == 3
        assert clauses == [[1, -2], [2, 3]]

    def test_clause_spanning_lines(self):
        num_vars, clauses = parse_dimacs("p cnf 2 1\n1\n-2 0\n")
        assert clauses == [[1, -2]]

    def test_var_count_grows_with_literals(self):
        num_vars, clauses = parse_dimacs("p cnf 1 1\n7 0\n")
        assert num_vars == 7

    def test_missing_terminator_keeps_clause(self):
        _, clauses = parse_dimacs("p cnf 2 1\n1 2\n")
        assert clauses == [[1, 2]]

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_dimacs("hello world\n")

    def test_rejects_bad_problem_line(self):
        with pytest.raises(ValueError):
            parse_dimacs("p sat 3\n")


class TestRoundTrip:
    def test_simple(self):
        clauses = [[1, -2], [2, 3], [-1]]
        text = dimacs_str(3, clauses, comment="test")
        num_vars, parsed = parse_dimacs(text)
        assert num_vars == 3
        assert parsed == clauses

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.lists(
                st.integers(min_value=1, max_value=9).flatmap(
                    lambda v: st.sampled_from([v, -v])
                ),
                min_size=1,
                max_size=4,
            ),
            min_size=0,
            max_size=12,
        )
    )
    def test_roundtrip_preserves_clauses(self, clauses):
        num_vars = max((abs(l) for c in clauses for l in c), default=1)
        _, parsed = parse_dimacs(dimacs_str(num_vars, clauses))
        assert parsed == clauses

    def test_roundtrip_preserves_satisfiability(self):
        clauses = [[1, 2], [-1, 2], [1, -2], [-1, -2]]
        _, parsed = parse_dimacs(dimacs_str(2, clauses))
        s = Solver()
        ok = all(s.add_clause(c) for c in parsed)
        assert (not ok) or s.solve() == Status.UNSAT
