"""Differential fuzz suite for the CDCL solver.

Hypothesis generates small random CNFs; every verdict is checked against
the brute-force enumerator from ``tests.conftest``.  Beyond plain
SAT/UNSAT agreement (already covered in ``test_solver``), this suite
checks the *artifacts*:

* SAT answers come with a model that satisfies every clause (and every
  assumption, when assuming);
* UNSAT-under-assumptions answers come with a core that (a) only
  mentions assumed literals, (b) is itself sufficient — the formula
  stays UNSAT when only the core literals are assumed, verified both by
  brute force and by a fresh solver instance;
* both properties survive incremental use: clauses added between
  ``solve()`` calls, assumptions varied call to call.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sat import Solver, Status
from tests.conftest import brute_force_sat, random_cnf

MAX_VARS = 6


def _signed(max_var: int):
    return st.integers(min_value=1, max_value=max_var).flatmap(
        lambda v: st.sampled_from([v, -v])
    )


def _cnf(draw):
    num_vars = draw(st.integers(min_value=1, max_value=MAX_VARS))
    clauses = draw(
        st.lists(
            st.lists(_signed(num_vars), min_size=1, max_size=4),
            min_size=0,
            max_size=24,
        )
    )
    return num_vars, clauses


def _load(clauses) -> Solver:
    solver = Solver()
    for clause in clauses:
        solver.add_clause(clause)
    return solver


def _model_satisfies(solver: Solver, clauses) -> bool:
    return all(any(solver.value(lit) for lit in clause) for clause in clauses)


@settings(max_examples=120, deadline=None)
@given(st.data())
def test_sat_model_is_a_real_model(data):
    num_vars, clauses = _cnf(data.draw)
    solver = _load(clauses)
    status = solver.solve() if solver.ok else Status.UNSAT
    assert (status == Status.SAT) == brute_force_sat(num_vars, clauses)
    if status == Status.SAT:
        assert _model_satisfies(solver, clauses)
        # model() must agree with value() literal by literal.
        for lit in solver.model():
            assert solver.value(lit) is True


@settings(max_examples=120, deadline=None)
@given(st.data())
def test_assumption_agreement_and_model(data):
    num_vars, clauses = _cnf(data.draw)
    assumptions = data.draw(
        st.lists(_signed(num_vars), min_size=1, max_size=4, unique_by=abs)
    )
    solver = _load(clauses)
    status = solver.solve(assumptions) if solver.ok else Status.UNSAT
    expected = brute_force_sat(
        num_vars, list(clauses) + [[a] for a in assumptions]
    )
    assert (status == Status.SAT) == expected
    if status == Status.SAT:
        assert _model_satisfies(solver, clauses)
        for assumption in assumptions:
            assert solver.value(assumption) is True


@settings(max_examples=120, deadline=None)
@given(st.data())
def test_unsat_core_is_sound(data):
    num_vars, clauses = _cnf(data.draw)
    assumptions = data.draw(
        st.lists(_signed(num_vars), min_size=1, max_size=5, unique_by=abs)
    )
    solver = _load(clauses)
    if not solver.ok:
        return  # UNSAT at level 0: no assumption core to speak of
    if solver.solve(assumptions) != Status.UNSAT:
        return
    core = solver.core()
    assert core <= set(assumptions)
    # The core alone reproduces the conflict: by brute force ...
    assert not brute_force_sat(num_vars, list(clauses) + [[a] for a in core])
    # ... and through a fresh solver instance.
    fresh = _load(clauses)
    assert fresh.solve(sorted(core, key=abs)) == Status.UNSAT


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_incremental_solving_matches_brute_force(data):
    """Verdicts stay exact as clauses arrive between solve() calls."""
    num_vars, clauses = _cnf(data.draw)
    cut = data.draw(st.integers(min_value=0, max_value=len(clauses)))
    solver = Solver()
    added = []
    for batch in (clauses[:cut], clauses[cut:]):
        ok = True
        for clause in batch:
            ok = solver.add_clause(clause) and ok
            added.append(clause)
        status = solver.solve() if solver.ok else Status.UNSAT
        assert (status == Status.SAT) == brute_force_sat(num_vars, added)
        if status == Status.SAT:
            assert _model_satisfies(solver, added)


def test_conflicting_assumptions_are_unsat_with_core():
    solver = Solver()
    solver.add_clause([1, 2])
    assert solver.solve([3, -3]) == Status.UNSAT
    assert solver.core() <= {3, -3}
    # The same solver stays usable afterwards (incremental contract).
    assert solver.solve() == Status.SAT


def test_assumption_entailed_by_units():
    solver = Solver()
    solver.add_clause([1])
    solver.add_clause([-1, 2])
    assert solver.solve([-2]) == Status.UNSAT
    assert solver.core() == {-2}
    assert solver.solve([2]) == Status.SAT


@pytest.mark.slow
def test_seeded_sweep_against_brute_force():
    """A deterministic, wider sweep than the Hypothesis budget allows."""
    rng = random.Random(20260727)
    for _ in range(400):
        num_vars, clauses = random_cnf(rng)
        solver = _load(clauses)
        status = solver.solve() if solver.ok else Status.UNSAT
        assert (status == Status.SAT) == brute_force_sat(num_vars, clauses)
        if status == Status.SAT:
            assert _model_satisfies(solver, clauses)
        assumptions = [
            rng.choice([-1, 1]) * v
            for v in rng.sample(range(1, num_vars + 1), min(3, num_vars))
        ]
        solver = _load(clauses)
        if not solver.ok:
            continue
        status = solver.solve(assumptions)
        expected = brute_force_sat(
            num_vars, list(clauses) + [[a] for a in assumptions]
        )
        assert (status == Status.SAT) == expected
        if status == Status.UNSAT:
            core = solver.core()
            assert core <= set(assumptions)
            assert not brute_force_sat(
                num_vars, list(clauses) + [[a] for a in core]
            )
