"""Tests for the CNF container."""

from __future__ import annotations

import pytest

from repro.encode.cnf import CnfBuilder


class TestCnfBuilder:
    def test_new_vars_sequential(self):
        cnf = CnfBuilder()
        assert [cnf.new_var() for _ in range(3)] == [1, 2, 3]
        assert cnf.num_vars == 3

    def test_add_clause_tracks_vars(self):
        cnf = CnfBuilder()
        cnf.add_clause([4, -7])
        assert cnf.num_vars == 7
        assert cnf.clauses == [[4, -7]]

    def test_rejects_zero_literal(self):
        with pytest.raises(ValueError):
            CnfBuilder().add_clause([1, 0])

    def test_add_all(self):
        cnf = CnfBuilder()
        cnf.add_all([[1], [2, -1]])
        assert len(cnf) == 2

    def test_copy_is_deep(self):
        cnf = CnfBuilder()
        cnf.add_clause([1, 2])
        clone = cnf.copy()
        clone.clauses[0][0] = 9
        clone.add_clause([3])
        assert cnf.clauses == [[1, 2]]
        assert clone.num_vars == 3

    def test_extend_vars(self):
        cnf = CnfBuilder()
        cnf.new_var()
        assert cnf.extend_vars(3) == [2, 3, 4]
