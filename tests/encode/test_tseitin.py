"""Tseitin encoding equivalence: CNF semantics must match simulation."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.aig import AIG, FALSE_LIT, TRUE_LIT, aig_not
from repro.circuit.simulate import Simulator
from repro.encode.tseitin import ConeEncoder
from repro.sat import Solver, Status


def _random_cone(seed: int):
    rng = random.Random(seed)
    aig = AIG()
    inputs = [aig.add_input(f"i{k}") for k in range(4)]
    pool = list(inputs) + [FALSE_LIT, TRUE_LIT]
    for _ in range(15):
        a, b = rng.choice(pool), rng.choice(pool)
        if rng.random() < 0.5:
            a = aig_not(a)
        if rng.random() < 0.5:
            b = aig_not(b)
        pool.append(aig.and_(a, b))
    root = pool[-1]
    if rng.random() < 0.5:
        root = aig_not(root)
    return aig, inputs, root


class TestConeEncoder:
    def test_input_leaf(self):
        aig = AIG()
        x = aig.add_input("x")
        solver = Solver()
        enc = ConeEncoder(aig, solver)
        lit = enc.lit(x)
        assert solver.solve([lit]) == Status.SAT
        assert solver.solve([-lit]) == Status.SAT

    def test_constant_false(self):
        aig = AIG()
        solver = Solver()
        enc = ConeEncoder(aig, solver)
        lit = enc.lit(FALSE_LIT)
        assert solver.solve([lit]) == Status.UNSAT
        assert solver.solve([enc.lit(TRUE_LIT)]) == Status.SAT

    def test_and_gate_truth_table(self):
        aig = AIG()
        a, b = aig.add_input("a"), aig.add_input("b")
        g = aig.and_(a, b)
        solver = Solver()
        enc = ConeEncoder(aig, solver)
        glit, alit, blit = enc.lit(g), enc.lit(a), enc.lit(b)
        assert solver.solve([glit, alit, blit]) == Status.SAT
        assert solver.solve([glit, -alit]) == Status.UNSAT
        assert solver.solve([-glit, alit, blit]) == Status.UNSAT

    def test_set_leaf_rejects_inverted(self):
        aig = AIG()
        x = aig.add_input("x")
        enc = ConeEncoder(aig, Solver())
        with pytest.raises(ValueError):
            enc.set_leaf(aig_not(x), 5)

    def test_set_leaf_rejects_gate(self):
        aig = AIG()
        a, b = aig.add_input("a"), aig.add_input("b")
        g = aig.and_(a, b)
        enc = ConeEncoder(aig, Solver())
        with pytest.raises(ValueError):
            enc.set_leaf(g, 5)

    def test_shared_nodes_encoded_once(self):
        aig = AIG()
        a, b = aig.add_input("a"), aig.add_input("b")
        g = aig.and_(a, b)
        h = aig.and_(g, a)
        solver = Solver()
        enc = ConeEncoder(aig, solver)
        enc.lit(h)
        vars_after_first = solver.num_vars
        enc.lit(g)  # already encoded as part of h's cone
        assert solver.num_vars == vars_after_first


@settings(max_examples=80, deadline=None)
@given(st.integers(min_value=0, max_value=100_000))
def test_encoding_matches_simulation(seed):
    """For every input valuation, the CNF forces the simulated value."""
    aig, inputs, root = _random_cone(seed)
    solver = Solver()
    enc = ConeEncoder(aig, solver)
    root_lit = enc.lit(root)
    input_lits = {x: enc.lit(x) for x in inputs}
    sim = Simulator(aig)
    for model in range(1 << len(inputs)):
        valuation = {x: bool((model >> k) & 1) for k, x in enumerate(inputs)}
        expected = sim.eval_lit(root, valuation)
        assumptions = [
            lit if valuation[x] else -lit for x, lit in input_lits.items()
        ]
        status = solver.solve(assumptions + [root_lit])
        assert (status == Status.SAT) == expected
