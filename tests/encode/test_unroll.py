"""Unroller tests: frame semantics must match step-by-step simulation."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.circuit.aig import AIG, aig_not
from repro.circuit.simulate import Simulator
from repro.encode.unroll import Unroller
from repro.gen.random_designs import random_design
from repro.sat import Solver, Status


class TestFrames:
    def test_initial_values_pinned(self):
        aig = AIG()
        q0 = aig.add_latch("q0", init=0)
        q1 = aig.add_latch("q1", init=1)
        aig.set_next(q0, q0)
        aig.set_next(q1, q1)
        solver = Solver()
        unroller = Unroller(aig, solver)
        assert solver.solve([unroller.latch_var(q0, 0)]) == Status.UNSAT
        assert solver.solve([-unroller.latch_var(q1, 0)]) == Status.UNSAT

    def test_uninitialized_latch_free_at_frame0(self):
        aig = AIG()
        q = aig.add_latch("q", init=None)
        aig.set_next(q, q)
        solver = Solver()
        unroller = Unroller(aig, solver)
        assert solver.solve([unroller.latch_var(q, 0)]) == Status.SAT
        assert solver.solve([-unroller.latch_var(q, 0)]) == Status.SAT

    def test_toggler_frame_parity(self):
        aig = AIG()
        q = aig.add_latch("q", init=0)
        aig.set_next(q, aig_not(q))
        solver = Solver()
        unroller = Unroller(aig, solver)
        for t in range(6):
            lit = unroller.lit(q, t)
            can_be_true = solver.solve([lit]) == Status.SAT
            assert can_be_true == (t % 2 == 1)

    def test_num_frames_tracks_extension(self):
        aig = AIG()
        q = aig.add_latch("q", init=0)
        aig.set_next(q, q)
        unroller = Unroller(aig, Solver())
        assert unroller.num_frames == 0
        unroller.frame(2)
        assert unroller.num_frames == 3

    def test_extract_inputs_roundtrip(self):
        aig = AIG()
        x = aig.add_input("x")
        q = aig.add_latch("q", init=0)
        aig.set_next(q, x)
        solver = Solver()
        unroller = Unroller(aig, solver)
        # Force q true at frame 2 => x true at frame 1.
        assert solver.solve([unroller.lit(q, 2)]) == Status.SAT
        inputs = unroller.extract_inputs(solver.value, 2)
        assert inputs[1][x] is True


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=5_000), st.integers(min_value=1, max_value=5))
def test_unrolling_agrees_with_simulation(seed, depth):
    """A forced input sequence drives the CNF to the simulated latch values."""
    aig = random_design(seed, n_props=1)
    rng = random.Random(seed + 1)
    sequence = [
        {inp: rng.random() < 0.5 for inp in aig.inputs} for _ in range(depth + 1)
    ]
    sim = Simulator(aig)

    solver = Solver()
    unroller = Unroller(aig, solver)
    unroller.frame(depth)
    assumptions = []
    for t, frame_inputs in enumerate(sequence[: depth + 1]):
        for inp, value in frame_inputs.items():
            var = unroller.input_var(inp, t)
            assumptions.append(var if value else -var)
    # Pin uninitialized latches to the simulator's defaults (False).
    for latch in aig.latches:
        if latch.init is None:
            assumptions.append(-unroller.latch_var(latch.lit, 0))
    assert solver.solve(assumptions) == Status.SAT
    for t, frame_inputs in enumerate(sequence[: depth + 1]):
        for latch in aig.latches:
            expected = sim.state[latch.lit]
            got = solver.value(unroller.latch_var(latch.lit, t))
            assert got == expected, (seed, t, latch.name)
        sim.step(frame_inputs)
