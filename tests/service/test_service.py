"""VerificationService contracts: submit/handle/stream/result, jobs
interleaved over one shared pool, back-pressure, cancellation, and the
Session facade as a thin wrapper over a private single-job service."""

from __future__ import annotations

import threading

import pytest

from repro.engines.result import PropStatus
from repro.gen.counter import buggy_counter
from repro.parallel import WorkerPool
from repro.progress import (
    JobFinished,
    JobQueued,
    JobStarted,
    ServiceSaturated,
    format_event,
)
from repro.service import JobStatus, QueueFull, VerificationService
from repro.session import (
    ConfigError,
    Session,
    UnknownStrategyError,
    VerificationConfig,
    register_strategy,
    unregister_strategy,
)
from repro.ts.system import TransitionSystem


def verdicts(report):
    return {name: o.status for name, o in report.outcomes.items()}


class TestSubmitBasics:
    def test_threaded_job_matches_session(self, counter4):
        expected = verdicts(Session(counter4, strategy="ja").run())
        with VerificationService() as service:
            handle = service.submit(counter4, strategy="ja")
            report = handle.result(timeout=60)
        assert verdicts(report) == expected
        assert handle.status is JobStatus.DONE
        assert handle.done.done()
        assert handle.done.result() is report

    def test_pooled_job_matches_session(self, counter4):
        expected = verdicts(Session(counter4, strategy="parallel-ja",
                                    workers=2).run())
        with VerificationService(workers=2) as service:
            handle = service.submit(counter4, strategy="parallel-ja")
            report = handle.result(timeout=60)
        assert verdicts(report) == expected
        assert report.stats["pool"] == "persistent"

    def test_job_lifecycle_events_in_order(self, toggler):
        events = []
        with VerificationService(workers=1) as service:
            handle = service.submit(
                toggler, strategy="parallel-ja", on_event=events.append
            )
            handle.result(timeout=60)
        kinds = [type(e) for e in events]
        assert kinds.index(JobQueued) < kinds.index(JobStarted)
        assert isinstance(events[-1], JobFinished)
        assert events[-1].status == "done"
        started = next(e for e in events if isinstance(e, JobStarted))
        assert started.mode == "pool"
        assert started.job == handle.job_id

    def test_events_stream_ends_on_job_finished(self, toggler):
        with VerificationService(workers=1) as service:
            handle = service.submit(toggler, strategy="parallel-ja")
            streamed = list(handle.events())
        assert isinstance(streamed[-1], JobFinished)
        solved = [e for e in streamed if e.kind == "property-solved"]
        assert {e.name for e in solved} <= {"never_r", "never_q"}

    def test_job_ids_are_sequential(self, toggler):
        with VerificationService() as service:
            first = service.submit(toggler, strategy="ja")
            second = service.submit(toggler, strategy="ja")
            assert [first.job_id, second.job_id] == ["job-0", "job-1"]
            service.drain(timeout=60)

    def test_unknown_strategy_rejected_at_submit(self, toggler):
        with VerificationService() as service:
            with pytest.raises(UnknownStrategyError):
                service.submit(toggler, strategy="nope")

    def test_bad_config_rejected_at_submit(self, toggler):
        with VerificationService() as service:
            with pytest.raises(ConfigError):
                service.submit(
                    toggler, VerificationConfig(strategy="ja", priority=-1)
                )
            with pytest.raises(ValueError):
                service.submit(toggler, strategy="ja", priority=0.0)

    def test_submit_after_close_rejected(self, toggler):
        service = VerificationService()
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(toggler, strategy="ja")

    def test_raising_subscriber_fails_the_job_not_the_service(self, toggler):
        """A subscriber blowing up (BrokenPipeError from a print under
        ``| head`` is the classic) must resolve the job's future with
        the error — never hang the caller or kill the dispatcher."""

        def explode(event):
            # The pipe "closes" after admission: JobQueued (emitted on
            # the submitting thread) still succeeds, later events blow.
            if event.kind != "job-queued":
                raise BrokenPipeError(32, "Broken pipe")

        with VerificationService(workers=1) as service:
            threaded = service.submit(toggler, strategy="ja",
                                      on_event=explode)
            with pytest.raises(BrokenPipeError):
                threaded.result(timeout=60)
            assert threaded.status is JobStatus.FAILED
            pooled = service.submit(toggler, strategy="parallel-ja",
                                    on_event=explode)
            with pytest.raises(BrokenPipeError):
                pooled.result(timeout=60)
            # The dispatcher survived: the service still serves jobs.
            healthy = service.submit(toggler, strategy="parallel-ja")
            assert healthy.result(timeout=60).outcomes[
                "never_r"
            ].status is PropStatus.HOLDS

    def test_strategy_error_reraises_at_result(self, toggler):
        @register_strategy("service-exploder")
        class Exploding:
            """Always raises."""

            def run(self, ts, config, emit):
                raise RuntimeError("boom")

        try:
            with VerificationService() as service:
                handle = service.submit(toggler, strategy="service-exploder")
                with pytest.raises(RuntimeError, match="boom"):
                    handle.result(timeout=60)
                assert handle.status is JobStatus.FAILED
        finally:
            unregister_strategy("service-exploder")


class TestConcurrentJobs:
    def test_four_concurrent_jobs_match_serial_sessions(self):
        """The acceptance bar: 4 concurrent submits over one shared
        2-worker pool, verdicts identical to serial Session.run()."""
        designs = [
            TransitionSystem(buggy_counter(bits=3)),
            TransitionSystem(buggy_counter(bits=4)),
            TransitionSystem(buggy_counter(bits=3)),
            TransitionSystem(buggy_counter(bits=4)),
        ]
        expected = [
            verdicts(Session(ts, strategy="parallel-ja", workers=2).run())
            for ts in designs
        ]
        with VerificationService(workers=2, max_concurrent_jobs=4) as service:
            handles = [
                service.submit(ts, strategy="parallel-ja") for ts in designs
            ]
            reports = [handle.result(timeout=120) for handle in handles]
        assert [verdicts(r) for r in reports] == expected
        assert all(h.status is JobStatus.DONE for h in handles)

    def test_jobs_share_one_pool_and_design_cache(self, counter4):
        with VerificationService(workers=2, max_concurrent_jobs=4) as service:
            handles = [
                service.submit(counter4, strategy="parallel-ja")
                for _ in range(4)
            ]
            for handle in handles:
                handle.result(timeout=120)
            pool_stats = service.stats()["pool"]
        # One design object: pickled once, 4 runs, seats spawned once.
        assert pool_stats["runs"] == 4
        assert pool_stats["design_pickles"] == 1
        assert pool_stats["workers_spawned"] == 2

    def test_mixed_pooled_and_threaded_jobs(self, counter4, toggler):
        with VerificationService(workers=2, max_concurrent_jobs=4) as service:
            pooled = service.submit(counter4, strategy="parallel-ja")
            threaded = service.submit(toggler, strategy="separate")
            assert verdicts(pooled.result(timeout=120)) == verdicts(
                Session(counter4, strategy="parallel-ja", workers=2).run()
            )
            assert verdicts(threaded.result(timeout=120)) == verdicts(
                Session(toggler, strategy="separate").run()
            )

    def test_attached_pool_is_left_running(self, toggler):
        with WorkerPool(workers=2) as pool:
            service = VerificationService(pool)
            handle = service.submit(toggler, strategy="parallel-ja")
            handle.result(timeout=60)
            service.close()
            assert not pool.closed  # attached, not owned
            # The released pool serves the exclusive engine again.
            report = Session(toggler, strategy="parallel-ja", pool=pool).run()
            assert report.outcomes["never_r"].status is PropStatus.HOLDS

    def test_owned_pool_is_shut_down_on_close(self, toggler):
        service = VerificationService(workers=1)
        service.submit(toggler, strategy="parallel-ja").result(timeout=60)
        pool = service.pool
        service.close()
        assert pool is not None and pool.closed

    def test_engine_refused_while_service_holds_the_pool(self, toggler):
        with WorkerPool(workers=1) as pool:
            with VerificationService(pool) as service:
                service.submit(toggler, strategy="parallel-ja").result(
                    timeout=60
                )
                with pytest.raises(RuntimeError, match="consumed|Service"):
                    Session(toggler, strategy="parallel-ja", pool=pool).run()


class _Gate:
    """A registrable strategy blocked on an event (test scaffolding)."""

    def __init__(self):
        self.release = threading.Event()
        self.entered = threading.Event()

    def run(self, ts, config, emit):
        self.entered.set()
        assert self.release.wait(timeout=60)
        from repro.multiprop.report import MultiPropReport

        return MultiPropReport(method="gated", design=config.design_name)


@pytest.fixture
def gate():
    # register_strategy instantiates the class; this test needs to hold
    # the instance (to open the gate), so it goes into the registry
    # directly — same slot, same cleanup.
    from repro.session.registry import _REGISTRY

    gate = _Gate()
    gate.name = "gated"
    _REGISTRY["gated"] = gate
    yield gate
    gate.release.set()
    unregister_strategy("gated")


class TestBackpressure:
    def test_queue_full_raises_and_emits_saturated(self, toggler, gate):
        events = []
        service = VerificationService(
            max_concurrent_jobs=1, max_pending=1, on_event=events.append
        )
        try:
            running = service.submit(toggler, strategy="gated")
            assert gate.entered.wait(timeout=30)
            queued = service.submit(toggler, strategy="gated")
            with pytest.raises(QueueFull) as info:
                service.submit(toggler, strategy="gated", block=False)
            assert info.value.pending == 1
            assert any(isinstance(e, ServiceSaturated) for e in events)
            with pytest.raises(QueueFull):
                service.submit(
                    toggler, strategy="gated", block=True, timeout=0.05
                )
            gate.release.set()
            running.result(timeout=60)
            queued.result(timeout=60)
        finally:
            gate.release.set()
            service.close()

    def test_blocking_submit_proceeds_when_space_frees(self, toggler, gate):
        service = VerificationService(max_concurrent_jobs=1, max_pending=1)
        try:
            service.submit(toggler, strategy="gated")
            assert gate.entered.wait(timeout=30)
            queued = service.submit(toggler, strategy="gated")
            releaser = threading.Timer(0.2, gate.release.set)
            releaser.start()
            # Blocks until the running job finishes and the queue drains.
            third = service.submit(toggler, strategy="gated", timeout=30)
            third.result(timeout=60)
            queued.result(timeout=60)
        finally:
            gate.release.set()
            service.close()


class TestCancellation:
    def test_cancel_queued_job_never_runs(self, toggler, counter4, gate):
        service = VerificationService(max_concurrent_jobs=1, max_pending=4)
        try:
            service.submit(toggler, strategy="gated")
            assert gate.entered.wait(timeout=30)
            queued = service.submit(counter4, strategy="ja")
            assert queued.cancel() is True
            assert queued.status is JobStatus.CANCELLED
            report = queued.result(timeout=60)
            assert all(
                o.status is PropStatus.UNKNOWN for o in report.outcomes.values()
            )
            assert set(report.outcomes) == {"P0", "P1"}
            gate.release.set()
        finally:
            gate.release.set()
            service.close()

    def test_cancel_terminal_job_returns_false(self, toggler):
        with VerificationService() as service:
            handle = service.submit(toggler, strategy="ja")
            handle.result(timeout=60)
            assert handle.cancel() is False

    def test_cancel_running_threaded_job_returns_false(self, toggler, gate):
        service = VerificationService()
        try:
            handle = service.submit(toggler, strategy="gated")
            assert gate.entered.wait(timeout=30)
            assert handle.cancel() is False
            gate.release.set()
            handle.result(timeout=60)
            assert handle.status is JobStatus.DONE
        finally:
            gate.release.set()
            service.close()

    def test_cancel_running_pooled_job_spares_siblings(self, counter4):
        """Cancelling one pooled job never perturbs its siblings."""
        expected = verdicts(
            Session(counter4, strategy="parallel-ja", workers=2).run()
        )
        victim_ts = TransitionSystem(buggy_counter(bits=6))
        with VerificationService(workers=2, max_concurrent_jobs=4) as service:
            victim = service.submit(victim_ts, strategy="parallel-ja")
            siblings = [
                service.submit(counter4, strategy="parallel-ja")
                for _ in range(2)
            ]
            victim.cancel()
            reports = [s.result(timeout=120) for s in siblings]
            victim.result(timeout=120)  # resolves either way
        assert victim.status in (JobStatus.CANCELLED, JobStatus.DONE)
        for sibling, report in zip(siblings, reports):
            assert sibling.status is JobStatus.DONE
            assert verdicts(report) == expected

    def test_close_cancels_the_pending_queue(self, toggler, counter4, gate):
        service = VerificationService(max_concurrent_jobs=1, max_pending=4)
        running = service.submit(toggler, strategy="gated")
        assert gate.entered.wait(timeout=30)
        queued = service.submit(counter4, strategy="ja")
        gate.release.set()
        service.close()
        assert running.status is JobStatus.DONE
        assert queued.status is JobStatus.CANCELLED
        assert all(
            o.status is PropStatus.UNKNOWN
            for o in queued.result(timeout=5).outcomes.values()
        )


class TestSessionIsAThinWrapper:
    def test_session_stream_carries_job_lifecycle(self, counter4):
        events = []
        Session(counter4, strategy="ja", on_event=events.append).run()
        kinds = [e.kind for e in events]
        assert kinds[0] == "run-started"
        assert kinds[-1] == "run-finished"
        assert kinds.count("job-queued") == 1
        assert kinds.count("job-started") == 1
        assert kinds.count("job-finished") == 1
        assert kinds.index("run-started") < kinds.index("job-queued")
        assert kinds.index("job-finished") < kinds.index("run-finished")

    def test_new_events_format(self):
        assert "job-queued" in format_event(
            JobQueued(job="job-0", design="d", strategy="ja", priority=2.0)
        )
        assert "pool" in format_event(
            JobStarted(job="job-0", design="d", strategy="parallel-ja",
                       mode="pool")
        )
        assert "done" in format_event(
            JobFinished(job="job-0", status="done", total_time=1.0,
                        num_true=1, num_false=0, num_unknown=0)
        )
        assert "2/2" in format_event(ServiceSaturated(pending=2, limit=2))
