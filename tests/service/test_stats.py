"""The service's structured stats surface (ServiceStats / PoolStats).

Covers the introspection half of the hardening work: occupancy and
queue-depth fields, per-job wait/run latency, per-seat crash/backoff
state, exchange traffic, the StatsSnapshot broadcast, and the
dict-compatible reads that keep pre-stats callers working.
"""

from __future__ import annotations

import pytest

from repro.parallel.stats import PoolStats, SeatStats
from repro.progress import StatsSnapshot, format_event
from repro.service import JobStats, ServiceStats, VerificationService
from repro.service.stats import latency_summary
from repro.session import ConfigError, VerificationConfig


class TestIdleService:
    def test_fresh_service_has_empty_stats_and_no_pool(self):
        with VerificationService(workers=1) as service:
            stats = service.stats()
            assert isinstance(stats, ServiceStats)
            assert stats.pending == 0
            assert stats.running == 0
            assert stats.finished == 0
            assert stats.submitted == 0
            assert stats.pool is None and stats.exchange is None
            assert stats.jobs == ()
            assert stats.latency["wait_max_s"] == 0.0
            # Legacy dict-style reads.
            assert stats["pending"] == 0
            assert "pool" not in stats
            assert stats.get("pool") is None
            as_dict = stats.as_dict()
            assert as_dict["jobs"]["records"] == []
            assert as_dict["max_pending"] == service.max_pending

    def test_bad_backoff_knobs_are_rejected(self):
        with pytest.raises(ValueError, match="backoff"):
            VerificationService(seat_backoff_base=0.0)
        with pytest.raises(ValueError, match="backoff"):
            VerificationService(seat_backoff_base=5.0, seat_backoff_cap=1.0)


class TestStatsAfterJobs:
    def test_threaded_jobs_report_latency_and_terminal_status(self, toggler):
        with VerificationService(max_concurrent_jobs=2) as service:
            handles = [
                service.submit(toggler, strategy="separate") for _ in range(2)
            ]
            for handle in handles:
                handle.result(timeout=120)
            stats = service.stats()
        assert stats.submitted == 2 and stats.finished == 2
        assert stats.running == 0 and stats.pending == 0
        for job in stats.jobs:
            assert isinstance(job, JobStats)
            assert job.status == "done" and job.kind == "thread"
            assert job.started
            assert job.wait_s >= 0.0 and job.run_s > 0.0
        assert stats.latency["run_max_s"] >= stats.latency["run_p50_s"] > 0.0
        assert stats.terminal_jobs == stats.jobs

    def test_pooled_jobs_expose_pool_seats_and_exchange(self, toggler):
        with VerificationService(workers=2, max_concurrent_jobs=2) as service:
            service.submit(toggler, strategy="parallel-ja").result(timeout=120)
            stats = service.stats()
            # Legacy subscripting straight through to the pool counters.
            assert stats["pool"]["runs"] == 1
            assert stats["pool"]["workers_spawned"] == 2
            pool = stats.pool
            assert isinstance(pool, PoolStats)
            assert pool.workers == 2
            assert len(pool.seats) == 2
            for seat in pool.seats:
                assert isinstance(seat, SeatStats)
                assert seat.crashes == 0
                assert seat.backoff_s == 0.0 and seat.respawn_in_s == 0.0
            assert sum(seat.properties_served for seat in pool.seats) == len(
                toggler.properties
            )
            assert stats.exchange is not None
            assert stats.exchange["clauses"] >= 0
            assert stats.exchange["live"] == []
            (job,) = stats.jobs
            assert job.kind == "pool" and job.status == "done"

    def test_queued_job_wait_is_still_growing(self, toggler):
        # A never-started job's wait clock runs until it is finalized.
        with VerificationService(max_concurrent_jobs=1) as service:
            blocker = service.submit(toggler, strategy="separate")
            queued = service.submit(toggler, strategy="separate")
            stats = service.stats()
            queued_stats = [j for j in stats.jobs if j.job == queued.job_id]
            if queued_stats and not queued_stats[0].started:
                assert queued_stats[0].run_s == 0.0
                assert queued_stats[0].wait_s >= 0.0
            blocker.result(timeout=120)
            queued.result(timeout=120)


class TestStatsSnapshotEvent:
    def test_emit_stats_broadcasts_a_snapshot(self, toggler):
        events = []
        with VerificationService(workers=1, on_event=events.append) as service:
            service.submit(toggler, strategy="parallel-ja").result(timeout=120)
            returned = service.emit_stats()
        snapshots = [e for e in events if isinstance(e, StatsSnapshot)]
        assert len(snapshots) == 1
        payload = snapshots[0].stats
        assert payload == returned.as_dict()
        assert payload["jobs"]["finished"] == 1
        assert payload["pool"]["alive"] >= 0
        line = format_event(snapshots[0])
        assert line.startswith("[stats-snapshot]")
        assert "1 finished jobs" in line

    def test_snapshot_renders_without_a_pool(self):
        line = format_event(StatsSnapshot(stats={}))
        assert "no pool" in line


class TestMaxSeatsConfig:
    def test_validation_rejects_bad_quotas(self):
        for bad in (0, -1, True, 1.5):
            with pytest.raises(ConfigError, match="max_seats"):
                VerificationConfig(max_seats=bad).validate()
        VerificationConfig(max_seats=1).validate()
        VerificationConfig(max_seats=None).validate()

    def test_quota_travels_into_the_pooled_job_report(self, toggler):
        with VerificationService(workers=2) as service:
            report = service.submit(
                toggler, strategy="parallel-ja", max_seats=1
            ).result(timeout=120)
        assert report.stats["max_seats"] == 1
        assert {o.status.value for o in report.outcomes.values()} == {
            "holds",
            "fails",
        }


class TestLatencySummary:
    def test_percentiles_over_job_records(self):
        def job(wait, run, started=True):
            return JobStats(
                job="j",
                design="d",
                strategy="s",
                status="done" if started else "queued",
                kind="thread",
                priority=1.0,
                started=started,
                wait_s=wait,
                run_s=run,
            )

        summary = latency_summary(
            (job(1.0, 10.0), job(3.0, 30.0), job(2.0, 0.0, started=False))
        )
        assert summary["wait_max_s"] == 3.0
        assert summary["wait_p50_s"] == 2.0
        # The never-started job contributes no run sample.
        assert summary["run_max_s"] == 30.0
        assert summary["run_p50_s"] in (10.0, 30.0)
        empty = latency_summary(())
        assert set(empty) == {
            "wait_p50_s",
            "wait_max_s",
            "run_p50_s",
            "run_max_s",
        }
        assert all(value == 0.0 for value in empty.values())
