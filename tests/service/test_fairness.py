"""Fairness/starvation properties of the multi-job seat scheduler.

Hypothesis drives random job mixes — designs of different sizes,
priorities spread over two orders of magnitude, random submission
order — through one shared 2-worker service and asserts the three
invariants the job-oriented API stands on:

1. **no starvation** — every admitted job reaches a terminal state,
   however lopsided the priorities (weighted fair share is
   work-conserving: a backlog only waits while seats are busy);
2. **verdict parity** — N concurrent jobs produce exactly the verdicts
   the same inputs produce under serial ``Session.run()``;
3. **cancellation isolation** — cancelling one job never perturbs any
   sibling's verdicts.

The service (and its pool) is module-scoped: seats stay warm and
designs stay cached across Hypothesis examples, which is exactly the
server regime the scheduler exists for — and what keeps this suite
fast enough for the non-slow tier.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuit.aig import AIG, aig_not
from repro.gen.counter import buggy_counter
from repro.service import JobStatus, VerificationService
from repro.session import Session
from repro.ts.system import TransitionSystem

RESULT_TIMEOUT = 120.0


def _blocks_design(groups: int) -> AIG:
    """Independent toggler blocks: 2 properties per group, one fails."""
    aig = AIG()
    for g in range(groups):
        x = aig.add_latch(f"x{g}", init=0)
        aig.set_next(x, aig_not(x))
        y = aig.add_latch(f"y{g}", init=0)
        aig.set_next(y, y)
        aig.add_property(f"g{g}_y0", aig_not(y))
        aig.add_property(f"g{g}_x0", aig_not(x))  # fails at frame 1
    return aig


#: Job menu: small designs of deliberately different sizes/shapes.
DESIGNS = {
    "counter3": TransitionSystem(buggy_counter(bits=3)),
    "counter4": TransitionSystem(buggy_counter(bits=4)),
    "blocks2": TransitionSystem(_blocks_design(2)),
    "blocks4": TransitionSystem(_blocks_design(4)),
}

_expected_cache: dict = {}


def expected_verdicts(key: str) -> dict:
    """Serial ``Session.run()`` ground truth, computed once per design."""
    if key not in _expected_cache:
        report = Session(
            DESIGNS[key], strategy="parallel-ja", workers=2
        ).run()
        _expected_cache[key] = {
            name: o.status for name, o in report.outcomes.items()
        }
    return _expected_cache[key]


def verdicts(report) -> dict:
    return {name: o.status for name, o in report.outcomes.items()}


@pytest.fixture(scope="module")
def service():
    with VerificationService(workers=2, max_concurrent_jobs=4) as service:
        yield service


job_mixes = st.lists(
    st.tuples(
        st.sampled_from(sorted(DESIGNS)),
        st.floats(min_value=0.05, max_value=8.0, allow_nan=False),
    ),
    min_size=2,
    max_size=4,
)


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(mix=job_mixes)
def test_every_admitted_job_finishes_with_serial_verdicts(service, mix):
    """Invariants 1 + 2: termination and parity under arbitrary mixes."""
    handles = [
        service.submit(DESIGNS[key], strategy="parallel-ja", priority=weight)
        for key, weight in mix
    ]
    reports = [handle.result(timeout=RESULT_TIMEOUT) for handle in handles]
    for (key, _), handle, report in zip(mix, handles, reports):
        assert handle.status is JobStatus.DONE, f"{handle} never finished"
        assert verdicts(report) == expected_verdicts(key), (
            f"job on {key} diverged from its serial Session.run()"
        )


@pytest.mark.slow
@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(mix=job_mixes, victim=st.integers(min_value=0, max_value=3))
def test_cancelling_one_job_never_perturbs_siblings(service, mix, victim):
    """Invariant 3: sibling verdicts survive any single cancellation."""
    victim %= len(mix)
    handles = [
        service.submit(DESIGNS[key], strategy="parallel-ja", priority=weight)
        for key, weight in mix
    ]
    handles[victim].cancel()
    for index, ((key, _), handle) in enumerate(zip(mix, handles)):
        report = handle.result(timeout=RESULT_TIMEOUT)
        if index == victim:
            # The victim resolves either way; a DONE victim simply won
            # the race and must then also show serial verdicts.
            assert handle.status in (JobStatus.CANCELLED, JobStatus.DONE)
            if handle.status is JobStatus.DONE:
                assert verdicts(report) == expected_verdicts(key)
        else:
            assert handle.status is JobStatus.DONE
            assert verdicts(report) == expected_verdicts(key)


@pytest.mark.slow
def test_starved_priorities_still_finish(service):
    """A 100:1 priority spread must not starve the lightweight job."""
    heavy = [
        service.submit(DESIGNS["blocks4"], strategy="parallel-ja",
                       priority=100.0)
        for _ in range(3)
    ]
    light = service.submit(DESIGNS["counter4"], strategy="parallel-ja",
                           priority=0.5)
    assert verdicts(light.result(timeout=RESULT_TIMEOUT)) == expected_verdicts(
        "counter4"
    )
    for handle in heavy:
        assert verdicts(
            handle.result(timeout=RESULT_TIMEOUT)
        ) == expected_verdicts("blocks4")
